// Package ncp computes network community profiles: the best conductance
// achievable at each community size, probed by approximate
// personalized-PageRank local clustering (Leskovec et al., "Community
// Structure in Large Networks"). The paper's central contrast — circles
// near conductance 1, communities spread below — gains a third line
// here: the NCP curve says what the graph itself admits at each size,
// so a circle's score can be read against the best possible set of its
// size rather than only against detected communities.
//
// The sweep is deterministic by construction: seed selection is a
// degree-stratified draw from a private seeded stream, the per-seed
// sweeps run on a bounded worker pool writing into indexed slots, and
// the minima merge serially in seed order — so the curve (and every
// byte rendered from it) is identical across worker counts, and
// identical between a parent graph and a pooled overlay of it.
package ncp

//experiments:package ncp-sweep

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"gpluscircles/internal/detect"
	"gpluscircles/internal/graph"
	"gpluscircles/internal/graphalgo"
	"gpluscircles/internal/nullmodel"
	"gpluscircles/internal/report"
)

// ErrEmptyGraph is returned when the swept view has no vertices.
var ErrEmptyGraph = errors.New("ncp: empty graph")

// Options tunes one NCP sweep.
type Options struct {
	// Seeds is the number of PPR seed vertices (default 32), capped at
	// the vertex count. Seeds are degree-stratified: vertices are ranked
	// by degree and one seed is drawn uniformly from each rank stratum,
	// so hubs and leaves both get probed.
	Seeds int
	// Eps is the PPR residual tolerance (default 1e-4).
	Eps float64
	// Alpha is the PPR teleport probability (default 0.15).
	Alpha float64
	// MaxSize bounds the community sizes swept (default 400).
	MaxSize int
	// Workers bounds the sweep worker pool; <= 0 selects GOMAXPROCS,
	// 1 runs serially. The curve does not depend on it.
	Workers int
	// Seed drives the stratified seed draw; 0 selects 1.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Seeds <= 0 {
		o.Seeds = 32
	}
	if o.Eps <= 0 {
		o.Eps = 1e-4
	}
	if o.Alpha <= 0 || o.Alpha >= 1 {
		o.Alpha = 0.15
	}
	if o.MaxSize <= 0 {
		o.MaxSize = 400
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Point is one point of the profile: the minimum conductance observed
// over all swept prefixes of exactly Size vertices.
type Point struct {
	Size        int
	Conductance float64
}

// Curve is a network community profile: best conductance per size,
// ascending by size, with sizes nothing swept at omitted.
type Curve struct {
	Points []Point
	// Seeds, Eps and Alpha record the resolved sweep parameters.
	Seeds int
	Eps   float64
	Alpha float64
}

// Best returns the curve's conductance at exactly size, or (1, false)
// when no swept set had that size.
func (c *Curve) Best(size int) (float64, bool) {
	i := sort.Search(len(c.Points), func(i int) bool { return c.Points[i].Size >= size })
	if i < len(c.Points) && c.Points[i].Size == size {
		return c.Points[i].Conductance, true
	}
	return 1, false
}

// BestAtMost returns the minimum conductance over sizes <= size, or
// (1, false) when the curve has no point there yet. This is the NCP
// reading used to benchmark a group: "could any set no larger than this
// one cut better?"
func (c *Curve) BestAtMost(size int) (float64, bool) {
	best, ok := 1.0, false
	for _, p := range c.Points {
		if p.Size > size {
			break
		}
		if !ok || p.Conductance < best {
			best, ok = p.Conductance, true
		}
	}
	return best, ok
}

// StratifiedSeeds draws k PPR seeds from g, degree-stratified: vertices
// are ranked by degree descending (ties ascending by id), the ranking is
// split into k equal strata, and one vertex is drawn uniformly from each
// — all from a private stream derived from seed, serially, before any
// parallelism starts. The draw is therefore a pure function of
// (degree sequence, k, seed).
func StratifiedSeeds(g graph.View, k int, seed int64) []graph.VID {
	n := g.NumVertices()
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	ranked := make([]graph.VID, n)
	for i := range ranked {
		ranked[i] = graph.VID(i)
	}
	sort.Slice(ranked, func(i, j int) bool {
		a, b := ranked[i], ranked[j]
		da, db := g.Degree(a), g.Degree(b)
		if da != db {
			return da > db
		}
		return a < b
	})
	rng := rand.New(rand.NewSource(seed*1000003 + 7))
	seeds := make([]graph.VID, k)
	for j := 0; j < k; j++ {
		lo, hi := j*n/k, (j+1)*n/k
		seeds[j] = ranked[lo+rng.Intn(hi-lo)]
	}
	return seeds
}

// Sweep computes the network community profile of g: for every seed, an
// approximate PPR push followed by a sweep-cut over the
// degree-normalized ordering, with the per-size minima merged across
// seeds. The merge happens serially in seed order after the parallel
// fan-out joins, so the curve is byte-identical across Workers settings
// — asserted by the package tests and the core golden.
func Sweep(g graph.View, opts Options) (*Curve, error) {
	n := g.NumVertices()
	if n == 0 {
		return nil, ErrEmptyGraph
	}
	opts = opts.withDefaults()
	seeds := StratifiedSeeds(g, opts.Seeds, opts.Seed)

	pprOpts := detect.PPROptions{Alpha: opts.Alpha, Eps: opts.Eps}
	results := make([][]float64, len(seeds))
	errs := make([]error, len(seeds))
	workers := opts.Workers
	if workers > len(seeds) {
		workers = len(seeds)
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			// Each worker owns its push and sweep workspaces; results
			// land in per-seed slots, so nothing here races or depends
			// on scheduling.
			ppr := detect.NewPPR(n)
			cutter := graphalgo.NewSweepCutter(n)
			for i := range jobs {
				results[i], errs[i] = sweepSeed(g, seeds[i], ppr, cutter, pprOpts, opts.MaxSize)
			}
		}()
	}
	for i := range seeds {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("seed %d (vertex %d): %w", i, seeds[i], err)
		}
	}

	// Serial merge in seed order; strict < keeps the first seed's value
	// on ties, so the result is independent of worker count twice over.
	best := make([]float64, opts.MaxSize+1)
	present := make([]bool, opts.MaxSize+1)
	for _, conds := range results {
		for j, c := range conds {
			size := j + 1
			if !present[size] || c < best[size] {
				best[size], present[size] = c, true
			}
		}
	}
	curve := &Curve{Seeds: len(seeds), Eps: opts.Eps, Alpha: opts.Alpha}
	for size := 1; size <= opts.MaxSize; size++ {
		if present[size] {
			curve.Points = append(curve.Points, Point{Size: size, Conductance: best[size]})
		}
	}
	return curve, nil
}

// sweepSeed runs one seed's push + sweep and returns the per-prefix
// conductances (index i is the prefix of size i+1), truncated to maxSize.
func sweepSeed(g graph.View, seed graph.VID, ppr *detect.PPR, cutter *graphalgo.SweepCutter, opts detect.PPROptions, maxSize int) ([]float64, error) {
	vec, err := ppr.Push(g, seed, opts)
	if err != nil {
		return nil, err
	}
	order := vec.DegreeNormalizedOrder(g)
	if len(order) > maxSize {
		order = order[:maxSize]
	}
	conds, err := cutter.Conductances(g, order, nil)
	if err != nil {
		return nil, err
	}
	// conds aliases the cutter's reuse buffer contract: Conductances
	// appended into a nil dst, so the slice is private already.
	return conds, nil
}

// NullCurve sweeps samples degree-preserving rewired null graphs of g
// and returns the pointwise-minimum profile across them, merged in
// sample order. The rewired graphs are pooled overlays from arena (nil
// uses a private arena), so at steady state null sweeps allocate no
// graph storage. The same Options contract applies: the result does not
// depend on Workers.
func NullCurve(g *graph.Graph, samples int, seed int64, arena *graph.OverlayArena, opts Options) (*Curve, error) {
	if samples <= 0 {
		return nil, fmt.Errorf("ncp: null samples must be positive, got %d", samples)
	}
	est, err := nullmodel.NewEmpiricalEstimator(g, nullmodel.EstimatorOptions{
		Samples: samples,
		Seed:    seed,
		Arena:   arena,
	})
	if err != nil {
		return nil, fmt.Errorf("ncp: null estimator: %w", err)
	}
	defer est.Close()

	var merged *Curve
	for i := 0; i < est.Samples(); i++ {
		c, err := Sweep(est.Sample(i), opts)
		if err != nil {
			return nil, fmt.Errorf("ncp: null sample %d: %w", i, err)
		}
		merged = mergeMin(merged, c)
	}
	return merged, nil
}

// mergeMin folds curve b into a pointwise: at each size the smaller
// conductance wins, with a's value kept on ties (merge order is the
// deterministic sample order, so this is reproducible).
func mergeMin(a, b *Curve) *Curve {
	if a == nil {
		return b
	}
	out := &Curve{Seeds: a.Seeds, Eps: a.Eps, Alpha: a.Alpha}
	i, j := 0, 0
	for i < len(a.Points) || j < len(b.Points) {
		switch {
		case j >= len(b.Points) || (i < len(a.Points) && a.Points[i].Size < b.Points[j].Size):
			out.Points = append(out.Points, a.Points[i])
			i++
		case i >= len(a.Points) || b.Points[j].Size < a.Points[i].Size:
			out.Points = append(out.Points, b.Points[j])
			j++
		default:
			p := a.Points[i]
			if b.Points[j].Conductance < p.Conductance {
				p.Conductance = b.Points[j].Conductance
			}
			out.Points = append(out.Points, p)
			i++
			j++
		}
	}
	return out
}

// WriteTable renders the curve as a report table, downsampling large
// curves geometrically (every size up to 10, then ~25% steps, always
// including the final point) so the table stays readable at MaxSize 400.
func (c *Curve) WriteTable(w io.Writer, title string) error {
	tbl := report.NewTable(title, "Size", "Best conductance")
	next := 0
	for i, p := range c.Points {
		last := i == len(c.Points)-1
		if !last && p.Size > 10 && p.Size < next {
			continue
		}
		tbl.AddRow(report.FmtInt(int64(p.Size)), report.Fmt(p.Conductance))
		if p.Size >= next {
			next = p.Size * 5 / 4
			if next <= p.Size {
				next = p.Size + 1
			}
		}
	}
	return tbl.Render(w)
}
