package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrLengthMismatch is returned when paired samples differ in length.
var ErrLengthMismatch = errors.New("stats: paired samples differ in length")

// Pearson returns the Pearson correlation coefficient of two paired
// samples, or 0 when either side has zero variance.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, ErrLengthMismatch
	}
	if len(xs) == 0 {
		return 0, ErrEmptySample
	}
	n := float64(len(xs))
	var sx, sy, sxy, sx2, sy2 float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxy += xs[i] * ys[i]
		sx2 += xs[i] * xs[i]
		sy2 += ys[i] * ys[i]
	}
	cov := sxy/n - (sx/n)*(sy/n)
	vx := sx2/n - (sx/n)*(sx/n)
	vy := sy2/n - (sy/n)*(sy/n)
	if vx <= 0 || vy <= 0 {
		return 0, nil
	}
	return cov / math.Sqrt(vx*vy), nil
}

// Spearman returns the Spearman rank correlation of two paired samples:
// the Pearson correlation of their rank transforms, with ties receiving
// their average rank. Yang & Leskovec use rank correlation to group the
// community scoring functions into four families.
func Spearman(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, ErrLengthMismatch
	}
	if len(xs) == 0 {
		return 0, ErrEmptySample
	}
	return Pearson(ranks(xs), ranks(ys))
}

// ranks returns average ranks (1-based) of the sample.
func ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	out := make([]float64, n)
	for i := 0; i < n; {
		j := i
		//lint:ignore floateq rank ties are defined by exact value equality in Spearman's statistic
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}
