package stats

import (
	"errors"
	"math/rand"
	"sort"
)

// ErrNoRNG is returned when a nil random source is supplied.
var ErrNoRNG = errors.New("stats: nil RNG")

// CI is a two-sided confidence interval for a statistic.
type CI struct {
	// Point is the statistic on the original sample.
	Point float64
	// Lo and Hi bound the interval at the requested level.
	Lo, Hi float64
	// Level is the nominal coverage, e.g. 0.95.
	Level float64
}

// Statistic maps a sample to a scalar (e.g. Mean, a quantile closure).
type Statistic func(xs []float64) float64

// BootstrapCI estimates a percentile-bootstrap confidence interval for
// the statistic: the sample is resampled with replacement `replicates`
// times and the interval taken from the empirical quantiles of the
// replicate statistics. Use a few hundred replicates for stable
// intervals; the experiments report 95 % intervals on distribution means
// so that shape claims ("circles score higher") carry uncertainty.
func BootstrapCI(xs []float64, stat Statistic, replicates int, level float64, rng *rand.Rand) (CI, error) {
	if rng == nil {
		return CI{}, ErrNoRNG
	}
	if len(xs) == 0 {
		return CI{}, ErrEmptySample
	}
	if replicates < 2 {
		return CI{}, errors.New("stats: need at least 2 bootstrap replicates")
	}
	if level <= 0 || level >= 1 {
		return CI{}, errors.New("stats: confidence level outside (0,1)")
	}

	out := CI{Point: stat(xs), Level: level}
	resample := make([]float64, len(xs))
	stats := make([]float64, replicates)
	for r := range stats {
		for i := range resample {
			resample[i] = xs[rng.Intn(len(xs))]
		}
		stats[r] = stat(resample)
	}
	sort.Float64s(stats)
	alpha := (1 - level) / 2
	out.Lo = quantileSorted(stats, alpha)
	out.Hi = quantileSorted(stats, 1-alpha)
	return out, nil
}

// MeanCI is a convenience wrapper bootstrapping the sample mean.
func MeanCI(xs []float64, replicates int, level float64, rng *rand.Rand) (CI, error) {
	return BootstrapCI(xs, Mean, replicates, level, rng)
}
