package stats

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarizeKnown(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.Variance-2.5) > 1e-12 {
		t.Errorf("Variance = %v, want 2.5", s.Variance)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); !errors.Is(err, ErrEmptySample) {
		t.Errorf("err = %v, want ErrEmptySample", err)
	}
}

func TestSummarizeSingleton(t *testing.T) {
	s, err := Summarize([]float64{7})
	if err != nil {
		t.Fatal(err)
	}
	if s.Variance != 0 || s.StdDev != 0 || s.Median != 7 {
		t.Errorf("summary = %+v", s)
	}
}

func TestMeanHelpers(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{2, 4}); got != 3 {
		t.Errorf("Mean = %v, want 3", got)
	}
	if got := MeanInts([]int{1, 2, 3}); got != 2 {
		t.Errorf("MeanInts = %v, want 2", got)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	q, err := Quantile([]float64{0, 10}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if q != 5 {
		t.Errorf("median of {0,10} = %v, want 5", q)
	}
	q, _ = Quantile([]float64{0, 10}, 0)
	if q != 0 {
		t.Errorf("q0 = %v, want 0", q)
	}
	q, _ = Quantile([]float64{0, 10}, 1)
	if q != 10 {
		t.Errorf("q1 = %v, want 10", q)
	}
}

func TestCDFKnown(t *testing.T) {
	c, err := NewCDF([]float64{1, 1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3 distinct steps", c.Len())
	}
	cases := []struct {
		x, want float64
	}{
		{0.5, 0}, {1, 0.5}, {1.5, 0.5}, {2, 0.75}, {3, 0.75}, {4, 1}, {5, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	if got := c.FractionAbove(2); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("FractionAbove(2) = %v, want 0.25", got)
	}
}

func TestKSDistanceIdentical(t *testing.T) {
	c, _ := NewCDF([]float64{1, 2, 3})
	if d := KSDistance(c, c); d != 0 {
		t.Errorf("KS(self) = %v, want 0", d)
	}
}

func TestKSDistanceDisjoint(t *testing.T) {
	a, _ := NewCDF([]float64{1, 2})
	b, _ := NewCDF([]float64{10, 20})
	if d := KSDistance(a, b); d != 1 {
		t.Errorf("KS(disjoint) = %v, want 1", d)
	}
}

func TestHistogramKnown(t *testing.T) {
	bins, err := Histogram([]float64{0, 1, 2, 3, 4}, 5)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, b := range bins {
		total += b.Count
	}
	if total != 5 {
		t.Errorf("histogram total = %d, want 5", total)
	}
	if bins[4].Count != 1 {
		t.Errorf("max value not counted in last bin: %+v", bins)
	}
}

func TestHistogramConstantSample(t *testing.T) {
	bins, err := Histogram([]float64{3, 3, 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) != 1 || bins[0].Count != 3 {
		t.Errorf("constant-sample bins = %+v", bins)
	}
}

func TestLogBinsCoverAll(t *testing.T) {
	xs := []float64{1, 2, 3, 10, 100, 1000}
	bins, err := LogBins(xs, 2)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, b := range bins {
		total += b.Count
	}
	if total != len(xs) {
		t.Errorf("log bins counted %d, want %d", total, len(xs))
	}
}

func TestLogBinsRejectsBadRatio(t *testing.T) {
	if _, err := LogBins([]float64{1}, 1); err == nil {
		t.Error("ratio=1 accepted, want error")
	}
}

func TestLogBinsSkipsNonPositive(t *testing.T) {
	bins, err := LogBins([]float64{-5, 0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, b := range bins {
		total += b.Count
	}
	if total != 1 {
		t.Errorf("counted %d, want 1 (non-positive skipped)", total)
	}
}

func TestGiniKnown(t *testing.T) {
	// Equal distribution -> 0.
	g, err := Gini([]float64{5, 5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g) > 1e-12 {
		t.Errorf("Gini(equal) = %v, want 0", g)
	}
	// One holder of everything among n: (n-1)/n.
	g, _ = Gini([]float64{0, 0, 0, 10})
	if math.Abs(g-0.75) > 1e-12 {
		t.Errorf("Gini(concentrated) = %v, want 0.75", g)
	}
	// All zeros defined as 0.
	g, _ = Gini([]float64{0, 0})
	if g != 0 {
		t.Errorf("Gini(zeros) = %v, want 0", g)
	}
}

func TestGiniValidation(t *testing.T) {
	if _, err := Gini(nil); !errors.Is(err, ErrEmptySample) {
		t.Errorf("err = %v, want ErrEmptySample", err)
	}
	if _, err := Gini([]float64{-1, 2}); err == nil {
		t.Error("negative values accepted")
	}
}

// Property: Gini lies in [0, 1) and is scale-invariant.
func TestQuickGini(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 2+rng.Intn(50))
		for i := range xs {
			xs[i] = rng.Float64() * 100
		}
		g1, err := Gini(xs)
		if err != nil || g1 < -1e-9 || g1 >= 1 {
			return false
		}
		scaled := make([]float64, len(xs))
		for i := range xs {
			scaled[i] = xs[i] * 7
		}
		g2, err := Gini(scaled)
		return err == nil && math.Abs(g1-g2) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: CDF is monotone non-decreasing and ends at 1.
func TestQuickCDFMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		c, err := NewCDF(xs)
		if err != nil {
			return false
		}
		if math.Abs(c.Y[len(c.Y)-1]-1) > 1e-12 {
			return false
		}
		return sort.Float64sAreSorted(c.X) && sort.Float64sAreSorted(c.Y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: KS distance is symmetric and within [0,1].
func TestQuickKSSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() CDF {
			xs := make([]float64, 1+rng.Intn(50))
			for i := range xs {
				xs[i] = rng.NormFloat64()
			}
			c, _ := NewCDF(xs)
			return c
		}
		a, b := mk(), mk()
		d1, d2 := KSDistance(a, b), KSDistance(b, a)
		return math.Abs(d1-d2) < 1e-12 && d1 >= 0 && d1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: quantiles are monotone in q and bracketed by min/max.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+rng.Intn(40))
		for i := range xs {
			xs[i] = rng.Float64() * 100
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v, err := Quantile(xs, q)
			if err != nil || v < prev {
				return false
			}
			prev = v
		}
		s, _ := Summarize(xs)
		return prev <= s.Max+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: histogram bin counts always sum to the sample size.
func TestQuickHistogramTotal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+rng.Intn(100))
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		bins, err := Histogram(xs, 1+rng.Intn(20))
		if err != nil {
			return false
		}
		total := 0
		for _, b := range bins {
			total += b.Count
		}
		return total == len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestApproxEqual(t *testing.T) {
	// Sum at runtime: a constant 0.1+0.2 would fold to exactly 0.3.
	tenth, fifth := 0.1, 0.2
	sum := tenth + fifth
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{1, 1, 0, true},                         // exact fast path
		{sum, 0.3, 1e-12, true},                 // classic rounding residue
		{sum, 0.3, 0, false},                    // exact comparison fails
		{1e18, 1e18 + 1e3, 1e-12, true},         // relative at large scale
		{1e18, 2e18, 1e-12, false},              // genuinely different
		{0, 1e-13, 1e-12, true},                 // absolute near zero
		{0, 1e-3, 1e-12, false},                 // too far at small scale
		{math.Inf(1), math.Inf(1), 1e-9, true},  // equal infinities
		{math.Inf(1), math.Inf(-1), 1e9, false}, // opposite infinities
		{math.NaN(), math.NaN(), 1e9, false},    // NaN never equals
	}
	for _, c := range cases {
		if got := ApproxEqual(c.a, c.b, c.tol); got != c.want {
			t.Errorf("ApproxEqual(%v, %v, %v) = %v, want %v", c.a, c.b, c.tol, got, c.want)
		}
	}
}
