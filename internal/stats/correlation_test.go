package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1) > 1e-12 {
		t.Errorf("Pearson = %v, want 1", r)
	}
	neg := []float64{8, 6, 4, 2}
	r, _ = Pearson(xs, neg)
	if math.Abs(r+1) > 1e-12 {
		t.Errorf("Pearson = %v, want -1", r)
	}
}

func TestPearsonConstantIsZero(t *testing.T) {
	r, err := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if r != 0 {
		t.Errorf("Pearson with constant side = %v, want 0", r)
	}
}

func TestPearsonValidation(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrLengthMismatch) {
		t.Errorf("err = %v, want ErrLengthMismatch", err)
	}
	if _, err := Pearson(nil, nil); !errors.Is(err, ErrEmptySample) {
		t.Errorf("err = %v, want ErrEmptySample", err)
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Any monotone transform has Spearman 1.
	xs := []float64{1, 5, 2, 9, 3}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = math.Exp(x)
	}
	r, err := Spearman(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1) > 1e-12 {
		t.Errorf("Spearman = %v, want 1", r)
	}
}

func TestSpearmanTies(t *testing.T) {
	// Ties get average ranks; correlation still defined.
	xs := []float64{1, 1, 2, 3}
	ys := []float64{4, 4, 5, 6}
	r, err := Spearman(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1) > 1e-12 {
		t.Errorf("Spearman with ties = %v, want 1", r)
	}
}

func TestRanksAverageTies(t *testing.T) {
	got := ranks([]float64{10, 20, 10})
	want := []float64{1.5, 3, 1.5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", got, want)
		}
	}
}

// Property: correlations stay within [-1, 1] and are symmetric.
func TestQuickCorrelationBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = rng.NormFloat64()
		}
		for _, fn := range []func([]float64, []float64) (float64, error){Pearson, Spearman} {
			ab, err1 := fn(xs, ys)
			ba, err2 := fn(ys, xs)
			if err1 != nil || err2 != nil {
				return false
			}
			if math.Abs(ab-ba) > 1e-9 || ab < -1-1e-9 || ab > 1+1e-9 || math.IsNaN(ab) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
