// Package stats provides the empirical-statistics utilities shared by the
// evaluation pipeline: summary statistics, empirical CDFs, linear and
// logarithmic histograms, quantiles and two-sample Kolmogorov–Smirnov
// distance. All functions are deterministic and allocation-conscious.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmptySample is returned by functions that need at least one value.
var ErrEmptySample = errors.New("stats: empty sample")

// ApproxEqual reports whether a and b agree within tol, absolutely for
// small magnitudes and relatively for large ones. It is the approved way
// to compare floating-point results: score kernels accumulate rounding
// differently depending on evaluation order, so exact == / != (flagged
// by circlelint's floateq check everywhere but here) silently turns into
// order-dependent behavior.
func ApproxEqual(a, b, tol float64) bool {
	if a == b {
		// Exact fast path; also handles equal infinities, which the
		// relative test below would turn into Inf-Inf = NaN.
		return true
	}
	diff := math.Abs(a - b)
	if math.IsInf(diff, 0) {
		// Opposite infinities, or one infinite operand: never close
		// (equal infinities already matched above).
		return false
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale > 1 {
		return diff <= tol*scale
	}
	return diff <= tol
}

// Summary holds the moments and quantiles of a sample.
type Summary struct {
	N        int
	Mean     float64
	Variance float64 // unbiased (n-1) sample variance; 0 for n < 2
	StdDev   float64
	Min      float64
	Max      float64
	Median   float64
	P25      float64
	P75      float64
	P90      float64
	P99      float64
}

// Summarize computes a Summary of the sample.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmptySample
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)

	var sum float64
	for _, x := range sorted {
		sum += x
	}
	mean := sum / float64(len(sorted))

	var ss float64
	for _, x := range sorted {
		d := x - mean
		ss += d * d
	}
	variance := 0.0
	if len(sorted) > 1 {
		variance = ss / float64(len(sorted)-1)
	}

	return Summary{
		N:        len(sorted),
		Mean:     mean,
		Variance: variance,
		StdDev:   math.Sqrt(variance),
		Min:      sorted[0],
		Max:      sorted[len(sorted)-1],
		Median:   quantileSorted(sorted, 0.5),
		P25:      quantileSorted(sorted, 0.25),
		P75:      quantileSorted(sorted, 0.75),
		P90:      quantileSorted(sorted, 0.90),
		P99:      quantileSorted(sorted, 0.99),
	}, nil
}

// Mean returns the arithmetic mean, or 0 for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MeanInts returns the arithmetic mean of an integer sample.
func MeanInts(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum int64
	for _, x := range xs {
		sum += int64(x)
	}
	return float64(sum) / float64(len(xs))
}

// Quantile returns the q-quantile (0 <= q <= 1) of the sample using linear
// interpolation between order statistics.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmptySample
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q), nil
}

func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CDF is an empirical cumulative distribution function: at X[i], the
// fraction Y[i] of the sample is <= X[i]. X is strictly increasing and Y
// non-decreasing, ending at 1.
type CDF struct {
	X []float64
	Y []float64
}

// NewCDF builds the empirical CDF of the sample with one step per
// distinct value.
func NewCDF(xs []float64) (CDF, error) {
	if len(xs) == 0 {
		return CDF{}, ErrEmptySample
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	n := float64(len(sorted))

	var c CDF
	for i := 0; i < len(sorted); i++ {
		// Collapse runs of equal values to a single step.
		//lint:ignore floateq CDF steps collapse runs of exactly equal sample values
		if i+1 < len(sorted) && sorted[i+1] == sorted[i] {
			continue
		}
		c.X = append(c.X, sorted[i])
		c.Y = append(c.Y, float64(i+1)/n)
	}
	return c, nil
}

// At evaluates the CDF at x: the fraction of the sample <= x.
func (c CDF) At(x float64) float64 {
	i := sort.SearchFloat64s(c.X, x)
	// SearchFloat64s returns the first index with X[i] >= x.
	//lint:ignore floateq empirical CDF lookup is exact by construction: X holds the sample values themselves
	if i < len(c.X) && c.X[i] == x {
		return c.Y[i]
	}
	if i == 0 {
		return 0
	}
	return c.Y[i-1]
}

// FractionAbove returns the sample fraction strictly greater than x.
func (c CDF) FractionAbove(x float64) float64 { return 1 - c.At(x) }

// Len returns the number of CDF steps (distinct sample values).
func (c CDF) Len() int { return len(c.X) }

// KSDistance returns the two-sample Kolmogorov–Smirnov statistic
// sup_x |F1(x) - F2(x)| between two empirical CDFs.
func KSDistance(a, b CDF) float64 {
	var d float64
	for _, x := range a.X {
		if v := math.Abs(a.At(x) - b.At(x)); v > d {
			d = v
		}
	}
	for _, x := range b.X {
		if v := math.Abs(a.At(x) - b.At(x)); v > d {
			d = v
		}
	}
	return d
}

// Bin is one histogram bucket over [Lo, Hi) holding Count samples.
type Bin struct {
	Lo, Hi float64
	Count  int
}

// Histogram bins the sample into k equal-width bins spanning [min, max].
// The final bin is closed on the right so the maximum is counted.
func Histogram(xs []float64, k int) ([]Bin, error) {
	if len(xs) == 0 {
		return nil, ErrEmptySample
	}
	if k < 1 {
		return nil, errors.New("stats: histogram needs k >= 1")
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	//lint:ignore floateq a constant sample has exactly equal extremes and gets a single degenerate bin
	if lo == hi {
		return []Bin{{Lo: lo, Hi: hi, Count: len(xs)}}, nil
	}
	width := (hi - lo) / float64(k)
	bins := make([]Bin, k)
	for i := range bins {
		bins[i].Lo = lo + float64(i)*width
		bins[i].Hi = lo + float64(i+1)*width
	}
	bins[k-1].Hi = hi
	for _, x := range xs {
		i := int((x - lo) / width)
		if i >= k {
			i = k - 1
		}
		bins[i].Count++
	}
	return bins, nil
}

// LogBins bins strictly positive integer-valued data into multiplicative
// bins of the given ratio (> 1), as used for log-log degree plots. Values
// <= 0 are skipped. Each bin holds [Lo, Hi) with Hi = Lo*ratio (rounded
// up to progress at least by 1).
func LogBins(xs []float64, ratio float64) ([]Bin, error) {
	if len(xs) == 0 {
		return nil, ErrEmptySample
	}
	if ratio <= 1 {
		return nil, errors.New("stats: log bin ratio must be > 1")
	}
	var positive []float64
	for _, x := range xs {
		if x > 0 {
			positive = append(positive, x)
		}
	}
	if len(positive) == 0 {
		return nil, ErrEmptySample
	}
	sort.Float64s(positive)
	maxV := positive[len(positive)-1]

	var bins []Bin
	lo := 1.0
	for lo <= maxV {
		hi := lo * ratio
		if hi < lo+1 {
			hi = lo + 1
		}
		bins = append(bins, Bin{Lo: lo, Hi: hi})
		lo = hi
	}
	for _, x := range positive {
		// Binary search for the bin containing x.
		i := sort.Search(len(bins), func(i int) bool { return bins[i].Hi > x })
		if i < len(bins) {
			bins[i].Count++
		}
	}
	return bins, nil
}

// CountsToFloats converts an integer sample (e.g. a degree sequence) to
// float64 for the CDF/fit helpers.
func CountsToFloats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// Gini returns the Gini coefficient of a non-negative sample: 0 for a
// perfectly equal distribution, approaching 1 when a single element
// holds everything. Commonly used to summarize degree inequality in
// social graphs.
func Gini(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmptySample
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if sorted[0] < 0 {
		return 0, errors.New("stats: Gini requires non-negative values")
	}
	n := float64(len(sorted))
	var cumWeighted, total float64
	for i, x := range sorted {
		cumWeighted += float64(i+1) * x
		total += x
	}
	//lint:ignore floateq a sum of non-negative values is exactly zero only when every value is; guards 0/0
	if total == 0 {
		return 0, nil
	}
	return (2*cumWeighted - (n+1)*total) / (n * total), nil
}
