package stats

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanCIBracketsTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	xs := make([]float64, 400)
	for i := range xs {
		xs[i] = rng.NormFloat64()*2 + 10
	}
	ci, err := MeanCI(xs, 300, 0.95, rng)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Lo > ci.Point || ci.Point > ci.Hi {
		t.Errorf("point %v outside interval [%v, %v]", ci.Point, ci.Lo, ci.Hi)
	}
	// With n=400, sd=2: the 95% CI half-width should be roughly
	// 1.96*2/20 ≈ 0.2; the true mean 10 should be inside.
	if ci.Lo > 10 || ci.Hi < 10 {
		t.Errorf("true mean 10 outside [%v, %v]", ci.Lo, ci.Hi)
	}
	if ci.Hi-ci.Lo > 1 {
		t.Errorf("interval too wide: [%v, %v]", ci.Lo, ci.Hi)
	}
}

func TestBootstrapCIConstantSample(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	ci, err := MeanCI([]float64{5, 5, 5, 5}, 50, 0.9, rng)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Lo != 5 || ci.Hi != 5 || ci.Point != 5 {
		t.Errorf("constant sample CI = %+v, want degenerate at 5", ci)
	}
}

func TestBootstrapCIValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	if _, err := MeanCI(nil, 10, 0.95, rng); !errors.Is(err, ErrEmptySample) {
		t.Errorf("err = %v, want ErrEmptySample", err)
	}
	if _, err := MeanCI([]float64{1}, 10, 0.95, nil); !errors.Is(err, ErrNoRNG) {
		t.Errorf("err = %v, want ErrNoRNG", err)
	}
	if _, err := MeanCI([]float64{1}, 1, 0.95, rng); err == nil {
		t.Error("replicates=1 accepted")
	}
	if _, err := MeanCI([]float64{1}, 10, 1.5, rng); err == nil {
		t.Error("level=1.5 accepted")
	}
}

func TestBootstrapCICustomStatistic(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	xs := []float64{1, 2, 3, 4, 100}
	median := func(v []float64) float64 {
		q, _ := Quantile(v, 0.5)
		return q
	}
	ci, err := BootstrapCI(xs, median, 200, 0.9, rng)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Point != 3 {
		t.Errorf("median point = %v, want 3", ci.Point)
	}
	// A median CI is robust to the outlier: the high bound stays modest.
	if ci.Hi > 100 {
		t.Errorf("median CI hit the outlier: %+v", ci)
	}
}

// Property: intervals are ordered and contain the point estimate for the
// mean statistic (a linear statistic of the resamples).
func TestQuickBootstrapOrdered(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 5+rng.Intn(60))
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		ci, err := MeanCI(xs, 100, 0.9, rng)
		if err != nil {
			return false
		}
		return ci.Lo <= ci.Hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
