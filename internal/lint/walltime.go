package lint

import (
	"go/ast"
	"go/types"
)

// Walltime flags time.Now and time.Since in non-test code. A
// deterministic reproduction must not branch on — or report — the wall
// clock: timing belongs in benchmarks (_test.go files, which the check
// skips), not in experiment kernels, where an elapsed-time line would
// make two otherwise identical reports differ.
var Walltime = &Analyzer{
	Name: "walltime",
	Doc:  "time.Now / time.Since in non-test, non-benchmark code",
	Run:  runWalltime,
}

func runWalltime(pass *Pass) {
	pkg := pass.Pkg
	for _, f := range pkg.Files {
		if isTestFile(pkg.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pkg.Info.Uses[id].(*types.Func)
			if !ok {
				return true
			}
			if isPkgFunc(fn, "time", "Now") || isPkgFunc(fn, "time", "Since") {
				pass.Reportf(id.Pos(),
					"time.%s makes output depend on the wall clock; keep timing in benchmarks or annotate why it is needed", fn.Name())
			}
			return true
		})
	}
}
