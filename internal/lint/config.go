package lint

import "strings"

// Config is the architecture description the module-scoped analyzers
// check: the layer map for layering, and the experiment-gate wiring for
// expboundary. DefaultConfig returns the repo's own map; fixture tests
// construct custom ones.
type Config struct {
	// ExperimentsPath is the import path of the experiments registry. A
	// command package importing an experiment-gated package must also
	// import the registry, so the gate is checkable at the call site.
	ExperimentsPath string
	// CommandPrefix marks command packages (the binaries), which get the
	// registry-mediated exception in expboundary and the Allow list in
	// layering. Matched as a path prefix, e.g. "gpluscircles/cmd/".
	CommandPrefix string
	// GatedPackages is the registry-declared experiment-gated package
	// list, import path -> experiment name. Merged with in-source
	// //experiments:package markers (markers win).
	GatedPackages map[string]string
	// Forbid are the layer rules: no import chain may lead from a From
	// package to a To package.
	Forbid []ForbidRule
	// CommandAllow, when non-empty, is the blessed-seam allowlist for
	// command packages: every direct module-internal import of a package
	// under CommandPrefix must match one of these patterns.
	CommandAllow []string
	// CommandRestrict narrows CommandAllow per seam: when a blessed
	// import matches a key pattern, only the command packages matching
	// that key's patterns may import it directly. This is how a package
	// stays importable by the one binary that embodies it (serve by
	// circled) without becoming a free-for-all seam — every other binary
	// must use the narrower contract package instead (serve/api).
	CommandRestrict map[string][]string
}

// ForbidRule forbids any module-internal import chain from a package
// matching From to a package matching To. Patterns are exact import
// paths or go-style prefix patterns ending in "/...".
type ForbidRule struct {
	// Name labels the rule in diagnostics, e.g. "kernels-below-core".
	Name string
	// Why is the one-line architectural reason reported with findings.
	Why  string
	From []string
	To   []string
}

// matchPattern reports whether an import path matches a pattern: exact,
// or prefix when the pattern ends in "/...".
func matchPattern(path, pattern string) bool {
	if prefix, ok := strings.CutSuffix(pattern, "/..."); ok {
		return path == prefix || strings.HasPrefix(path, prefix+"/")
	}
	return path == pattern
}

// matchAny reports whether path matches any of the patterns.
func matchAny(path string, patterns []string) bool {
	for _, p := range patterns {
		if matchPattern(path, p) {
			return true
		}
	}
	return false
}

// DefaultConfig is the repo's own architecture map, the invariant the
// layering analyzer keeps true by construction:
//
//	foundation   obs, stats, powerlaw, report, cliflag
//	graph        graph (CSR core; imports only obs)
//	kernels      score, graphalgo, sample
//	domain       synth, nullmodel, detect, feature, dataset
//	orchestration core
//	serving      serve
//	tools        lint, experiments (import nothing module-internal)
//	commands     cmd/* (blessed seams only)
//
// Lower layers must never reach up: an algorithm kernel importing the
// orchestrator (or anything importing a cmd package) is a cycle waiting
// to happen and makes the kernel untestable in isolation.
func DefaultConfig() *Config {
	const mod = "gpluscircles"
	layer := func(pkgs ...string) []string {
		out := make([]string, len(pkgs))
		for i, p := range pkgs {
			out[i] = mod + "/internal/" + p
		}
		return out
	}
	foundation := layer("obs", "stats", "powerlaw", "report", "cliflag")
	below := layer("obs", "stats", "powerlaw", "report", "cliflag",
		"graph", "score", "graphalgo", "sample",
		"synth", "nullmodel", "detect", "feature", "dataset")
	return &Config{
		ExperimentsPath: mod + "/internal/experiments",
		CommandPrefix:   mod + "/cmd/",
		GatedPackages:   map[string]string{},
		Forbid: []ForbidRule{
			{
				Name: "no-upward-imports",
				Why:  "algorithm and data layers must stay usable without the orchestrator or the service",
				From: below,
				To:   []string{mod + "/internal/core", mod + "/internal/serve/...", mod + "/cmd/..."},
			},
			{
				Name: "core-below-serve",
				Why:  "the experiment orchestrator must not depend on the serving layer or the binaries",
				From: []string{mod + "/internal/core"},
				To:   []string{mod + "/internal/serve/...", mod + "/cmd/..."},
			},
			{
				Name: "foundation-is-leaf",
				Why:  "observability, stats and report primitives must not depend on graph or domain code",
				From: foundation,
				To: layer("graph", "score", "graphalgo", "sample",
					"synth", "nullmodel", "detect", "feature", "dataset"),
			},
			{
				Name: "tools-standalone",
				Why:  "the static-analysis engine and the experiments registry are self-contained by design",
				From: layer("lint", "experiments"),
				To:   []string{mod + "/internal/...", mod + "/cmd/..."},
			},
		},
		// The blessed seams a binary may touch directly. Notably absent:
		// nullmodel, sample, feature, stats — binaries reach those through
		// core's orchestration or score's interfaces, never directly.
		// serve/api is the wire contract every serving-tier client shares;
		// serve itself is restricted below to the binary that embodies it.
		CommandAllow: layer("cliflag", "core", "dataset", "detect", "experiments",
			"graph", "graphalgo", "lint", "ncp", "obs", "powerlaw", "report",
			"score", "serve", "serve/api", "synth"),
		CommandRestrict: map[string][]string{
			mod + "/internal/serve": {mod + "/cmd/circled"},
		},
	}
}
