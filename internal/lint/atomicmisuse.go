package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Atomicmisuse flags struct fields that are accessed through the
// sync/atomic functions in one place and by plain load or store in
// another, anywhere in the module. Mixing the two is a data race even
// when each site looks locally correct: the plain access ignores the
// ordering the atomic side paid for. Because the analyzer is
// module-scoped and every package shares one type-checked universe, the
// same *types.Var identifies a field across packages — an exported
// counter updated atomically in its home package and read plainly from
// another package is caught, which no single-package pass can see. The
// typed atomics (atomic.Int64 and friends) make the mistake
// unrepresentable and are the preferred fix.
var Atomicmisuse = &Analyzer{
	Name:      "atomicmisuse",
	Doc:       "struct fields accessed via sync/atomic in one place and by plain load/store in another",
	Scope:     ScopeModule,
	RunModule: runAtomicmisuse,
}

// fieldAccess is one access site of a tracked field.
type fieldAccess struct {
	pos  token.Pos
	pkg  *Package
	expr *ast.SelectorExpr
}

func runAtomicmisuse(pass *ModulePass) {
	// Pass 1: every field whose address feeds a sync/atomic function,
	// with the selector nodes involved (so pass 2 can exclude them).
	atomicSites := make(map[*types.Var][]fieldAccess)
	atomicExprs := make(map[*ast.SelectorExpr]bool)
	for _, pkg := range pass.Mod.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pkg, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
					return true
				}
				for _, arg := range call.Args {
					unary, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || unary.Op != token.AND {
						continue
					}
					sel, ok := ast.Unparen(unary.X).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					v := selectedField(pkg, sel)
					if v == nil {
						continue
					}
					atomicSites[v] = append(atomicSites[v], fieldAccess{pos: sel.Pos(), pkg: pkg, expr: sel})
					atomicExprs[sel] = true
				}
				return true
			})
		}
	}
	if len(atomicSites) == 0 {
		return
	}

	// Pass 2: plain selector accesses of the same fields anywhere in the
	// module, excluding the atomic call sites themselves.
	plainSites := make(map[*types.Var][]fieldAccess)
	for _, pkg := range pass.Mod.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || atomicExprs[sel] {
					return true
				}
				v := selectedField(pkg, sel)
				if v == nil {
					return true
				}
				if _, tracked := atomicSites[v]; !tracked {
					return true
				}
				plainSites[v] = append(plainSites[v], fieldAccess{pos: sel.Pos(), pkg: pkg, expr: sel})
				return true
			})
		}
	}

	// Deterministic report order: fields sorted by their declaration
	// position, then plain sites in source order.
	fields := make([]*types.Var, 0, len(plainSites))
	for v := range plainSites {
		fields = append(fields, v)
	}
	fset := pass.Mod.Pkgs[0].Fset
	sort.Slice(fields, func(i, j int) bool { return fields[i].Pos() < fields[j].Pos() })
	for _, v := range fields {
		sites := plainSites[v]
		sort.Slice(sites, func(i, j int) bool { return sites[i].pos < sites[j].pos })
		first := fset.Position(atomicSites[v][0].pos)
		for _, site := range sites {
			pass.Reportf(site.pos,
				"field %s is accessed with sync/atomic at %s:%d but plainly here; mixed access is a data race — use the typed atomics (atomic.%s)",
				v.Name(), shortFile(first.Filename), first.Line, typedAtomicFor(v.Type()))
		}
	}
}

// selectedField resolves a selector to the struct field it denotes, or
// nil when it selects a method, a package member, or anything else.
func selectedField(pkg *Package, sel *ast.SelectorExpr) *types.Var {
	if selection, ok := pkg.Info.Selections[sel]; ok && selection.Kind() == types.FieldVal {
		if v, ok := selection.Obj().(*types.Var); ok {
			return v
		}
		return nil
	}
	// Qualified references (pkg.Var) resolve through Uses; only fields
	// are interesting here.
	if v, ok := pkg.Info.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}

// shortFile trims the path to its last two elements for readable
// cross-file references inside a message.
func shortFile(path string) string {
	parts := strings.Split(path, "/")
	if len(parts) <= 2 {
		return path
	}
	return strings.Join(parts[len(parts)-2:], "/")
}

// typedAtomicFor names the sync/atomic typed wrapper matching t, for
// the fix hint.
func typedAtomicFor(t types.Type) string {
	basic, ok := t.Underlying().(*types.Basic)
	if !ok {
		return "Value"
	}
	switch basic.Kind() {
	case types.Int32:
		return "Int32"
	case types.Int64, types.Int:
		return "Int64"
	case types.Uint32:
		return "Uint32"
	case types.Uint64, types.Uint:
		return "Uint64"
	case types.Uintptr:
		return "Uintptr"
	case types.Bool:
		return "Bool"
	default:
		return "Value"
	}
}
