package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Floateq flags == and != between floating-point operands. Conductance
// and ratio-cut scores accumulate rounding differently depending on
// evaluation order, so exact equality silently turns into
// worker-count-dependent behavior; comparisons must go through the
// tolerance helpers in internal/stats. The helpers themselves (which
// need exact fast paths for infinities and identical values) are the
// only approved production site for these operators; test files are
// exempt because determinism tests assert exact values by design.
var Floateq = &Analyzer{
	Name: "floateq",
	Doc:  "== / != between floating-point operands outside internal/stats tolerance helpers",
	Run:  runFloateq,
}

// floateqApproved names the tolerance helpers in internal/stats that may
// compare floats exactly.
var floateqApproved = map[string]bool{
	"ApproxEqual": true,
}

func runFloateq(pass *Pass) {
	pkg := pass.Pkg
	inStats := strings.HasSuffix(pkg.Path, "internal/stats")
	for _, f := range pkg.Files {
		if isTestFile(pkg.Fset, f.Pos()) {
			continue
		}
		// A stack of enclosing nodes so a comparison can be traced to
		// its enclosing named function declaration.
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			xt, yt := pkg.Info.Types[bin.X], pkg.Info.Types[bin.Y]
			if !isFloat(xt.Type) && !isFloat(yt.Type) {
				return true
			}
			// Two constants compare exactly at compile time.
			if xt.Value != nil && yt.Value != nil {
				return true
			}
			if inStats && floateqApproved[enclosingFuncName(stack)] {
				return true
			}
			pass.Reportf(bin.OpPos,
				"%s between floats is rounding-sensitive; use the tolerance helpers in internal/stats (e.g. stats.ApproxEqual)", bin.Op)
			return true
		})
	}
}

// enclosingFuncName returns the name of the innermost enclosing function
// declaration on the node stack, or "" when the innermost enclosing
// function is a literal or the node is at package level.
func enclosingFuncName(stack []ast.Node) string {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Name.Name
		case *ast.FuncLit:
			return ""
		}
	}
	return ""
}
