package lint

import (
	"go/ast"
	"go/types"
)

// Globalrng flags randomness that escapes the seeded-child-RNG
// discipline (internal/core/parallel.go): math/rand package-level
// functions draw from a shared global source whose stream depends on
// every other caller, and rand.New/rand.NewSource seeded from the wall
// clock differ on every run. Deterministic kernels must thread an
// explicit *rand.Rand derived from the suite seed. Test files are
// exempt.
var Globalrng = &Analyzer{
	Name: "globalrng",
	Doc:  "math/rand global-source functions and wall-clock-seeded rand.New/NewSource outside tests",
	Run:  runGlobalrng,
}

// randConstructors are the math/rand functions that build an explicit
// source instead of drawing from the global one.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func isRandPkg(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

func runGlobalrng(pass *Pass) {
	pkg := pass.Pkg
	for _, f := range pkg.Files {
		if isTestFile(pkg.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := calleeFunc(pkg, n)
				if fn == nil || fn.Pkg() == nil || !isRandPkg(fn.Pkg().Path()) {
					return true
				}
				// Constructors are the approved path — unless the seed
				// itself is nondeterministic.
				if randConstructors[fn.Name()] && wallClockArg(pkg, n) {
					pass.Reportf(n.Pos(),
						"rand.%s seeded from the wall clock is nondeterministic; derive the seed from the suite seed", fn.Name())
				}
			case *ast.Ident:
				fn, ok := pkg.Info.Uses[n].(*types.Func)
				if !ok || fn.Pkg() == nil || !isRandPkg(fn.Pkg().Path()) {
					return true
				}
				sig, ok := fn.Type().(*types.Signature)
				if !ok || sig.Recv() != nil || randConstructors[fn.Name()] {
					return true
				}
				pass.Reportf(n.Pos(),
					"rand.%s draws from the shared global source; thread an explicit seeded *rand.Rand instead", fn.Name())
			}
			return true
		})
	}
}

// wallClockArg reports whether any argument of call involves time.Now.
func wallClockArg(pkg *Package, call *ast.CallExpr) bool {
	found := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if inner, ok := n.(*ast.CallExpr); ok {
				if fn := calleeFunc(pkg, inner); isPkgFunc(fn, "time", "Now") {
					found = true
				}
			}
			return !found
		})
	}
	return found
}
