package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree lays out a throwaway module from path -> content pairs.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for path, content := range files {
		full := filepath.Join(dir, filepath.FromSlash(path))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const testGoMod = "module example.com/m\n\ngo 1.22\n"

func TestLoadModuleSyntaxError(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod":  testGoMod,
		"bad.go":  "package m\n\nfunc broken( {\n",
		"good.go": "package m\n",
	})
	if _, err := LoadModule(dir); err == nil {
		t.Error("unparseable file loaded without error")
	}
}

func TestLoadModuleTypeError(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod": testGoMod,
		"bad.go": "package m\n\nfunc F() int { return \"not an int\" }\n",
	})
	_, err := LoadModule(dir)
	if err == nil {
		t.Fatal("type error loaded without error")
	}
	if !strings.Contains(err.Error(), "type-check") {
		t.Errorf("error %q does not identify the type-check stage", err)
	}
}

func TestLoadModuleMissingGoMod(t *testing.T) {
	dir := writeTree(t, map[string]string{"a.go": "package m\n"})
	if _, err := LoadModule(dir); err == nil {
		t.Error("module without go.mod loaded")
	}
}

func TestLoadModuleNoModuleDirective(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod": "go 1.22\n",
		"a.go":   "package m\n",
	})
	_, err := LoadModule(dir)
	if err == nil {
		t.Fatal("go.mod without a module directive loaded")
	}
	if !strings.Contains(err.Error(), "module directive") {
		t.Errorf("error %q does not explain the missing directive", err)
	}
}

func TestLoadModuleImportCycle(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod": testGoMod,
		"a/a.go": "package a\n\nimport \"example.com/m/b\"\n\nvar A = b.B\n",
		"b/b.go": "package b\n\nimport \"example.com/m/a\"\n\nvar B = a.A\n",
	})
	_, err := LoadModule(dir)
	if err == nil {
		t.Fatal("import cycle loaded without error")
	}
	if !strings.Contains(err.Error(), "import cycle") {
		t.Errorf("error %q does not name the cycle", err)
	}
}

func TestLoadModuleQuotedModuleDirective(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod": "module \"example.com/quoted\"\n\ngo 1.22\n",
		"a.go":   "package quoted\n",
	})
	pkgs, err := LoadModule(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "example.com/quoted" {
		t.Errorf("quoted module directive resolved to %+v", pkgs)
	}
}

func TestLoadModuleSkipsConventionalDirs(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod":             testGoMod,
		"a.go":               "package m\n",
		"testdata/x/x.go":    "package x\n\nfunc broken( {\n", // never parsed
		".hidden/h.go":       "package h\n\nfunc broken( {\n",
		"_attic/old.go":      "package old\n\nfunc broken( {\n",
		"sub/sub.go":         "package sub\n",
		"sub/testdata/t.go":  "package t\n\nfunc broken( {\n",
		"sub/sub_test.go":    "package sub\n\nimport \"testing\"\n\nfunc TestOK(t *testing.T) {}\n",
		"sub/ext_test.go":    "package sub_test\n\nimport \"testing\"\n\nfunc TestExt(t *testing.T) {}\n",
		"sub/doc/doc.go":     "package doc\n",
		"sub/doc/doc_ext.go": "package doc\n",
	})
	pkgs, err := LoadModule(dir)
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for _, pkg := range pkgs {
		paths = append(paths, pkg.Path)
	}
	want := map[string]bool{
		"example.com/m":          true,
		"example.com/m/sub":      true,
		"example.com/m/sub.test": true, // external _test package
		"example.com/m/sub/doc":  true,
	}
	if len(paths) != len(want) {
		t.Fatalf("loaded %v, want the %d packages %v", paths, len(want), want)
	}
	for _, p := range paths {
		if !want[p] {
			t.Errorf("unexpected package %s (skipped dirs leaked?)", p)
		}
	}
}

func TestLoadPackageDirRejectsMultiplePackages(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"a.go": "package a\n",
		"b.go": "package b\n",
	})
	if _, err := LoadPackageDir(dir, "fixture/multi"); err == nil {
		t.Error("directory with two primary packages loaded as one")
	}
}

func TestFindModuleRootWalksUp(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod":      testGoMod,
		"deep/x/a.go": "package x\n",
	})
	root, err := FindModuleRoot(filepath.Join(dir, "deep", "x"))
	if err != nil {
		t.Fatal(err)
	}
	// t.TempDir may itself sit under a symlink; compare resolved paths.
	wantRoot, _ := filepath.EvalSymlinks(dir)
	gotRoot, _ := filepath.EvalSymlinks(root)
	if gotRoot != wantRoot {
		t.Errorf("FindModuleRoot = %s, want %s", gotRoot, wantRoot)
	}
	if _, err := FindModuleRoot(string(filepath.Separator)); err == nil {
		t.Error("FindModuleRoot at / found a go.mod")
	}
}
