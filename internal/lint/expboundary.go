package lint

import "strings"

// Expboundary enforces the experiment gate at the import graph: a
// package owned by an experiment (declared with an
// //experiments:package marker or in Config.GatedPackages) may only be
// imported by other experiment-gated packages, or by command packages
// that also import the experiments registry — the static shadow of the
// runtime rule that gated surfaces are reached through
// experiments.Set.Require. A stable package importing an experimental
// one would silently extend the no-compatibility-promise surface into
// code that does promise compatibility.
var Expboundary = &Analyzer{
	Name:      "expboundary",
	Doc:       "stable packages importing experiment-gated packages (cmd binaries must go through the registry)",
	Scope:     ScopeModule,
	RunModule: runExpboundary,
}

func runExpboundary(pass *ModulePass) {
	cfg := pass.Config
	for _, from := range pass.Mod.Paths() {
		if isExternalTestPkg(from) {
			continue
		}
		if _, gated := pass.Mod.GatedExperiment(from, cfg); gated {
			continue // experiments may depend on experiments
		}
		isCmd := cfg.CommandPrefix != "" && strings.HasPrefix(from, cfg.CommandPrefix)
		for _, dep := range pass.Mod.Imports(from) {
			exp, gated := pass.Mod.GatedExperiment(dep, cfg)
			if !gated {
				continue
			}
			if isCmd {
				if cfg.ExperimentsPath != "" && importsPath(pass.Mod, from, cfg.ExperimentsPath) {
					continue // gate is checkable at the call site
				}
				pass.ReportChain(pass.Mod.ImportPos(from, dep), []string{from, dep},
					"command %s imports experiment-gated package %s (experiment %q) without the experiments registry %s; gate the surface with Set.Require",
					from, dep, exp, cfg.ExperimentsPath)
				continue
			}
			pass.ReportChain(pass.Mod.ImportPos(from, dep), []string{from, dep},
				"stable package %s imports experiment-gated package %s (experiment %q); experimental code carries no compatibility promise and must stay behind the gate",
				from, dep, exp)
		}
	}
}

// importsPath reports whether pkg directly imports dep.
func importsPath(m *Module, pkg, dep string) bool {
	for _, p := range m.Imports(pkg) {
		if p == dep {
			return true
		}
	}
	return false
}

// isExternalTestPkg reports whether the import path names an external
// _test package as loaded by LoadModule (suffixed ".test"). Test code
// may import anything in the module; the architecture rules bind the
// shipped packages.
func isExternalTestPkg(path string) bool {
	return strings.HasSuffix(path, ".test")
}
