package lint

import (
	"go/ast"
	"go/types"
)

// Ctxfirst flags exported functions and methods that accept a
// context.Context anywhere but the first parameter position (first after
// the receiver for methods). The run surface threads cancellation
// through RunAllCtx-style entry points, and Go's convention — enforced
// here so call sites stay uniform — is that the context leads the
// signature. Test files are exempt: test helpers conventionally take
// *testing.T first.
var Ctxfirst = &Analyzer{
	Name: "ctxfirst",
	Doc:  "exported functions taking a context.Context must take it as their first parameter",
	Run:  runCtxfirst,
}

func runCtxfirst(pass *Pass) {
	pkg := pass.Pkg
	for _, f := range pkg.Files {
		if isTestFile(pkg.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || !fn.Name.IsExported() || fn.Type.Params == nil {
				continue
			}
			pos := 0
			for _, field := range fn.Type.Params.List {
				width := len(field.Names)
				if width == 0 {
					width = 1
				}
				if pos > 0 && isContextType(pkg, field.Type) {
					pass.Reportf(field.Pos(),
						"%s takes context.Context at parameter %d; the context must be the first parameter", fn.Name.Name, pos+1)
				}
				pos += width
			}
		}
	}
}

// isContextType reports whether the expression's type is context.Context.
func isContextType(pkg *Package, expr ast.Expr) bool {
	tv, ok := pkg.Info.Types[expr]
	if !ok {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
