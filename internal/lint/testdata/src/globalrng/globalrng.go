// Fixture for the globalrng check.
package globalrng

import (
	"math/rand"
	"time"
)

// BadGlobal draws from the shared global source.
func BadGlobal() int {
	return rand.Intn(10) // want globalrng
}

// BadGlobalFloat draws a float from the global source.
func BadGlobalFloat() float64 {
	return rand.Float64() // want globalrng
}

// BadGlobalShuffle shuffles through the global source.
func BadGlobalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want globalrng
}

// BadWallClockSeed builds an explicit source but seeds it from the wall
// clock, so every run still differs.
func BadWallClockSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want globalrng
}

// GoodSeeded builds a deterministic source from an explicit seed.
func GoodSeeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// GoodThreaded consumes an explicitly threaded RNG.
func GoodThreaded(rng *rand.Rand) int {
	return rng.Intn(10)
}

// IgnoredGlobal shows the escape hatch.
func IgnoredGlobal() int {
	//lint:ignore globalrng demo code where reproducibility is irrelevant
	return rand.Intn(10)
}
