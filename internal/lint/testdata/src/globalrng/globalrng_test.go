// Test files are exempt from globalrng: fixture asserts no diagnostics
// here despite global-source draws.
package globalrng

import "math/rand"

func helperForTests() int {
	return rand.Intn(10)
}
