// Fixture for the floateq check.
package floateq

import "math"

// BadEqual compares floats exactly.
func BadEqual(a, b float64) bool {
	return a == b // want floateq
}

// BadNotEqual compares floats exactly with !=.
func BadNotEqual(a, b float32) bool {
	return a != b // want floateq
}

// BadZeroTest compares a computed float against a constant.
func BadZeroTest(xs []float64) bool {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum == 0 // want floateq
}

// GoodTolerance compares through an explicit tolerance.
func GoodTolerance(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9
}

// GoodInts compares integers, which are exact.
func GoodInts(a, b int) bool {
	return a == b
}

// GoodConstants folds at compile time.
func GoodConstants() bool {
	return 0.1+0.2 != 0.3
}

// IgnoredSentinel shows the escape hatch.
func IgnoredSentinel(x float64) bool {
	//lint:ignore floateq NaN self-test requires exact comparison
	return x != x
}
