// Fixture for the ctxfirst check.
package ctxfirst

import "context"

// Run leads with the context: clean.
func Run(ctx context.Context, n int) error {
	_ = ctx
	_ = n
	return nil
}

// Load buries the context behind the path: flagged.
func Load(path string, ctx context.Context) error { // want ctxfirst
	_ = path
	_ = ctx
	return nil
}

// Fetch declares the context last among several parameters: flagged.
func Fetch(host string, port int, ctx context.Context) { // want ctxfirst
	_, _, _ = host, port, ctx
}

type Server struct{}

// Serve is a method with the context first after the receiver: clean.
func (s *Server) Serve(ctx context.Context) error {
	_ = ctx
	return nil
}

// Shutdown is a method hiding the context behind another parameter:
// flagged.
func (s *Server) Shutdown(graceSeconds int, ctx context.Context) { // want ctxfirst
	_, _ = graceSeconds, ctx
}

// NoContext takes no context at all: clean.
func NoContext(a, b int) int { return a + b }

// load is unexported; the convention is only enforced on the exported
// API surface.
func load(path string, ctx context.Context) {
	_, _ = path, ctx
}

// LegacyCallback keeps a grandfathered signature under a reasoned
// directive.
//
//lint:ignore ctxfirst mirrors a frozen upstream callback signature
func LegacyCallback(data []byte, ctx context.Context) {
	_, _ = data, ctx
}

var _ = load
