// Fixture for the //lint:ignore directive machinery itself.
package ignore

import "time"

// ReasonLess has a directive with no reason: the directive is reported
// and the finding it targeted still fires.
func ReasonLess() time.Time {
	//lint:ignore walltime
	return time.Now()
}

// UnknownCheck names a check that does not exist.
func UnknownCheck() int {
	//lint:ignore nosuchcheck because reasons
	return 1
}

// WellFormed suppresses cleanly.
func WellFormed() time.Time {
	//lint:ignore walltime fixture demonstrating a valid suppression
	return time.Now()
}
