// Fixture for the goroutineleak check.
package goroutineleak

import (
	"context"
	"sync"
)

func work(i int) int { return i * i }

// BadFireAndForget spawns a goroutine nothing ever joins.
func BadFireAndForget(results []int) {
	go func() { // want goroutineleak
		for i := range results {
			results[i] = work(i)
		}
	}()
}

// BadDetachedProducer hands back a channel but shows no join itself and
// no guarantee the consumer drains it.
func BadDetachedProducer(done *bool) {
	go func() { *done = true }() // want goroutineleak
}

// GoodWaitGroup joins through a WaitGroup before returning.
func GoodWaitGroup(n int) []int {
	out := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = work(i)
		}(i)
	}
	wg.Wait()
	return out
}

// GoodChannelJoin joins by receiving the goroutine's result.
func GoodChannelJoin() int {
	ch := make(chan int)
	go func() { ch <- work(3) }()
	return <-ch
}

// GoodRangeJoin drains a channel the goroutine closes.
func GoodRangeJoin(n int) int {
	ch := make(chan int)
	go func() {
		defer close(ch)
		for i := 0; i < n; i++ {
			ch <- work(i)
		}
	}()
	total := 0
	for v := range ch {
		total += v
	}
	return total
}

// GoodCtxSelectJoin is the cancellation-aware worker shape used by the
// run engine: the spawner blocks on either the worker's result or the
// context, so the goroutine never outlives an attended join point.
func GoodCtxSelectJoin(ctx context.Context) int {
	ch := make(chan int, 1)
	go func() { ch <- work(5) }()
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return 0
	}
}

// BadCtxWorker accepts a context but never joins: watching ctx.Done
// inside the goroutine is not a join for the spawner.
func BadCtxWorker(ctx context.Context, results []int) {
	go func() { // want goroutineleak
		for i := range results {
			if ctx.Err() != nil {
				return
			}
			results[i] = work(i)
		}
	}()
}

// IgnoredDaemon shows the escape hatch for intentional daemons.
func IgnoredDaemon(tick chan int) {
	//lint:ignore goroutineleak metrics daemon runs for the process lifetime
	go func() {
		for range tick {
		}
	}()
}
