// Package unboundedgoroutine is the fixture for the unboundedgoroutine
// check: per-iteration spawns with no bound are flagged; the fixed-width
// pool and semaphore idioms are not.
package unboundedgoroutine

import "sync"

// perItem spawns one goroutine per element: fan-out grows with the
// input even though every goroutine is joined.
func perItem(items []int) {
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func(it int) { // want unboundedgoroutine
			defer wg.Done()
			use(it)
		}(it)
	}
	wg.Wait()
}

// fixedPool is the bounded idiom: the 3-clause counter loop caps the
// spawns at n regardless of workload.
func fixedPool(n int, jobs chan int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				use(j)
			}
		}()
	}
	wg.Wait()
}

// semaphore is the other bounded idiom: the channel send blocks the
// loop once the bound is reached.
func semaphore(items []int) {
	sem := make(chan struct{}, 4)
	var wg sync.WaitGroup
	for _, it := range items {
		sem <- struct{}{}
		wg.Add(1)
		go func(it int) {
			defer wg.Done()
			use(it)
			<-sem
		}(it)
	}
	wg.Wait()
}

// condLoop spawns per iteration of a condition-only loop: the spawn
// count depends on the predicate, not a declared bound.
func condLoop(next func() bool, done chan struct{}) {
	for next() {
		go notify(done) // want unboundedgoroutine
	}
	<-done
}

func use(int)              {}
func notify(chan struct{}) {}
