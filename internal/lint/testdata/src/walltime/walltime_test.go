// Benchmarks and tests may read the clock freely: fixture asserts no
// diagnostics in _test.go files.
package walltime

import (
	"testing"
	"time"
)

func BenchmarkClock(b *testing.B) {
	start := time.Now()
	for i := 0; i < b.N; i++ {
		_ = time.Since(start)
	}
}
