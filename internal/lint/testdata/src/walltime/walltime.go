// Fixture for the walltime check.
package walltime

import (
	"fmt"
	"io"
	"time"
)

// BadTimestamp stamps output with the wall clock, so two identical runs
// produce different reports.
func BadTimestamp(w io.Writer) {
	fmt.Fprintf(w, "generated at %v\n", time.Now()) // want walltime
}

// BadElapsed measures elapsed wall time in a non-benchmark path.
func BadElapsed(w io.Writer, start time.Time) {
	fmt.Fprintf(w, "took %v\n", time.Since(start)) // want walltime
}

// GoodDuration manipulates time values without reading the clock.
func GoodDuration(d time.Duration) time.Duration {
	return d * 2
}

// IgnoredClock shows the escape hatch.
func IgnoredClock() time.Time {
	//lint:ignore walltime log timestamps are intentionally wall-clock
	return time.Now()
}
