// Fixture for the maporder check. Lines tagged `// want maporder`
// expect a diagnostic; untagged map iterations are the approved
// patterns.
package maporder

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// BadPrint iterates a map straight into fmt output.
func BadPrint(m map[string]int) {
	for k, v := range m { // want maporder
		fmt.Printf("%s=%d\n", k, v)
	}
}

// BadWriter iterates a map into an io.Writer.
func BadWriter(w io.Writer, m map[string]int) {
	for k := range m { // want maporder
		w.Write([]byte(k))
	}
}

// BadBuilder iterates a map into a strings.Builder.
func BadBuilder(m map[string]int) string {
	var sb strings.Builder
	for k := range m { // want maporder
		sb.WriteString(k)
	}
	return sb.String()
}

// BadReturnedSlice returns a slice built from unsorted map iteration.
func BadReturnedSlice(m map[string]int) []string {
	var keys []string
	for k := range m { // want maporder
		keys = append(keys, k)
	}
	return keys
}

// GoodSortedKeys collects keys, sorts, then emits in order.
func GoodSortedKeys(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

// GoodSortedReturn sorts the collected keys before returning them.
func GoodSortedReturn(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// GoodAggregate only folds the values, where order cannot matter.
func GoodAggregate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// GoodSliceRange ranges over a slice, which is ordered.
func GoodSliceRange(w io.Writer, xs []string) {
	for _, x := range xs {
		fmt.Fprintln(w, x)
	}
}

// IgnoredPrint shows the escape hatch.
func IgnoredPrint(m map[string]int) {
	//lint:ignore maporder order does not matter for this debug dump
	for k := range m {
		fmt.Println(k)
	}
}
