// Fixture for the floateq allowlist: loaded under an import path ending
// in internal/stats, where the approved tolerance helpers may compare
// floats exactly. Only the allowlisted helper is exempt.
package stats

import "math"

// ApproxEqual is the approved tolerance helper; its exact fast path must
// not be flagged.
func ApproxEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol
}

// Mean is not an approved helper, even inside internal/stats.
func Mean(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	if sum == 0 { // want floateq
		return 0
	}
	return sum / float64(len(xs))
}
