// Package mid sits between graph and core; its upward import is the
// middle hop of the forbidden chain the fixture exercises.
package mid

import "example.com/layermod/core"

// Glue forwards into the core layer.
func Glue() string { return core.Orchestrate() }
