module example.com/layermod

go 1.22
