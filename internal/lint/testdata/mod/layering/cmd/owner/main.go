// Command owner is the one binary allowed to import the restricted
// serveish seam, so none of its imports are violations.
package main

import "example.com/layermod/serveish"

func main() {
	_ = serveish.Handle()
}
