// Command tool imports one blessed seam (mid) and one package that is
// not on the allowlist (graph): only the latter is a violation.
package main

import (
	"example.com/layermod/graph" // want layering
	"example.com/layermod/mid"
)

func main() {
	_ = graph.Build()
	_ = mid.Glue()
}
