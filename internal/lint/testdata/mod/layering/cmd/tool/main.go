// Command tool imports one blessed seam (mid), one package that is not
// on the allowlist (graph), and one allowlisted seam restricted to a
// different command (serveish): the latter two are violations.
package main

import (
	"example.com/layermod/graph" // want layering
	"example.com/layermod/mid"
	"example.com/layermod/serveish" // want layering
)

func main() {
	_ = graph.Build()
	_ = mid.Glue()
	_ = serveish.Handle()
}
