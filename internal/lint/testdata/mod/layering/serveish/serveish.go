// Package serveish is a blessed seam restricted to cmd/owner: any
// other command importing it trips the CommandRestrict rule even though
// the package is on the allowlist.
package serveish

// Handle is a stand-in export.
func Handle() int { return 3 }
