// Package core is the top of the fixture's layer stack: nothing below
// it may reach back up.
package core

// Orchestrate stands in for the run-everything layer.
func Orchestrate() string { return "core" }
