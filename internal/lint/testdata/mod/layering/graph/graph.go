// Package graph is a foundation layer: the fixture's layer map forbids
// it from reaching core. It has no direct core import — the violation
// is transitive through mid, so the analyzer must walk the graph and
// report the full chain, anchored at this import.
package graph

import "example.com/layermod/mid" // want layering

// Build leans on mid, which leans on core: graph -> mid -> core.
func Build() string { return mid.Glue() }
