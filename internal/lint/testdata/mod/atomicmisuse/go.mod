module example.com/atommod

go 1.22
