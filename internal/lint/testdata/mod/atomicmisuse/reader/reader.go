// Package reader reads a counter field plainly from outside the
// package that updates it atomically — the cross-package race only a
// module-wide pass can see.
package reader

import (
	"sync/atomic"

	"example.com/atommod/counter"
)

// Total reads the atomically-written field without the atomics.
func Total(s *counter.Stats) int64 {
	return s.Total // want atomicmisuse
}

// Hits does it right: same field, atomic load, no diagnostic.
func Hits(s *counter.Stats) int64 {
	return atomic.LoadInt64(&s.Hits)
}
