// Package counter mixes atomic and plain access to the same field —
// in-package for Hits, cross-package (see reader) for Total.
package counter

import "sync/atomic"

// Stats is shared across goroutines.
type Stats struct {
	Hits  int64
	Total int64
	Done  uint32
	local int64
}

// Record updates both counters atomically.
func (s *Stats) Record(n int64) {
	atomic.AddInt64(&s.Hits, 1)
	atomic.AddInt64(&s.Total, n)
}

// Finish flips the flag atomically and is read atomically everywhere:
// no diagnostic for Done.
func (s *Stats) Finish()        { atomic.StoreUint32(&s.Done, 1) }
func (s *Stats) Finished() bool { return atomic.LoadUint32(&s.Done) == 1 }

// Snapshot reads Hits plainly in the same package as the atomic writes.
func (s *Stats) Snapshot() int64 {
	return s.Hits // want atomicmisuse
}

// Bump touches a field that is never accessed atomically: plain access
// alone is not a finding.
func (s *Stats) Bump() { s.local++ }
