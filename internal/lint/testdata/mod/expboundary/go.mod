module example.com/expmod

go 1.22
