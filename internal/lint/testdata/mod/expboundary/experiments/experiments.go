// Package experiments is the fixture module's registry stand-in: a
// command that imports it is assumed to gate its experimental surfaces
// at the call site.
package experiments

// Enabled reports whether the named experiment is on.
func Enabled(name string) bool { return false }
