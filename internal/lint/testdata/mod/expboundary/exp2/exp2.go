// Package exp2 carries no marker; the fixture config lists it in
// GatedPackages (the registry-declared path).
package exp2

import "example.com/expmod/exp" // gated importing gated is fine

// Boost leans on the other experiment.
func Boost() int { return exp.Turbo() * 2 }
