// Command goodtool imports the experiments registry alongside the
// gated package, so the runtime gate is checkable where the surface is
// used — this is the blessed pattern.
package main

import (
	"example.com/expmod/exp"
	"example.com/expmod/experiments"
)

func main() {
	if experiments.Enabled("turbo") {
		_ = exp.Turbo()
	}
}
