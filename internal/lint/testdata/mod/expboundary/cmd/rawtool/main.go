// Command rawtool reaches an experimental package without importing
// the registry, so nothing can gate the surface at the call site.
package main

import "example.com/expmod/exp" // want expboundary

func main() { _ = exp.Turbo() }
