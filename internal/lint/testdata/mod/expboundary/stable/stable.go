// Package stable promises compatibility and therefore must not reach
// experimental code.
package stable

import (
	"example.com/expmod/exp"  // want expboundary
	"example.com/expmod/exp2" // want expboundary
)

// Leak drags two experimental surfaces into the stable API.
func Leak() int { return exp.Turbo() + exp2.Boost() }
