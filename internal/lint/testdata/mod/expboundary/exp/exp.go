// Package exp is gated by the in-source marker.
//
//experiments:package turbo
package exp

// Turbo is the experimental surface.
func Turbo() int { return 42 }
