package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strconv"
	"strings"
)

// experimentsMarker opens the in-source package-gating directive:
//
//	//experiments:package <name>
//
// A package carrying the marker is owned by the named experiment; the
// expboundary analyzer forbids stable packages from importing it. The
// registry-declared equivalent is Config.GatedPackages.
const experimentsMarker = "//experiments:package"

// Module is the whole-module view the module-scoped analyzers run over:
// every loaded package, the module-internal import graph, and the
// experiment-gating markers, all derived from one LoadModule call so a
// run parses and type-checks the source exactly once.
type Module struct {
	// Pkgs holds every loaded package in load (dependency) order.
	Pkgs []*Package

	byPath  map[string]*Package
	imports map[string][]string // module-internal direct imports, sorted
	markers map[string]string   // import path -> experiment name
}

// NewModule indexes loaded packages into the module view. The import
// graph comes from the shared type information (only edges between the
// given packages are kept); //experiments:package markers are scanned
// from every file's comments.
func NewModule(pkgs []*Package) *Module {
	m := &Module{
		Pkgs:    pkgs,
		byPath:  make(map[string]*Package, len(pkgs)),
		imports: make(map[string][]string, len(pkgs)),
		markers: make(map[string]string),
	}
	for _, pkg := range pkgs {
		m.byPath[pkg.Path] = pkg
	}
	for _, pkg := range pkgs {
		var deps []string
		if pkg.Types != nil {
			for _, imp := range pkg.Types.Imports() {
				if _, ok := m.byPath[imp.Path()]; ok {
					deps = append(deps, imp.Path())
				}
			}
		}
		sort.Strings(deps)
		m.imports[pkg.Path] = deps
		if name, ok := packageMarker(pkg); ok {
			m.markers[pkg.Path] = name
		}
	}
	return m
}

// packageMarker scans a package's comments for //experiments:package.
func packageMarker(pkg *Package) (string, bool) {
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, experimentsMarker)
				if !ok {
					continue
				}
				if name := strings.TrimSpace(rest); name != "" {
					return name, true
				}
			}
		}
	}
	return "", false
}

// Package returns the loaded package at the import path, or nil.
func (m *Module) Package(path string) *Package { return m.byPath[path] }

// Imports returns a package's direct module-internal imports, sorted.
func (m *Module) Imports(path string) []string { return m.imports[path] }

// Paths returns every package path in the module, sorted, so analyzers
// iterate deterministically regardless of load order.
func (m *Module) Paths() []string {
	paths := make([]string, 0, len(m.byPath))
	for p := range m.byPath {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

// GatedExperiment resolves a package's owning experiment: the in-source
// marker wins, then the config's registry-declared list.
func (m *Module) GatedExperiment(path string, cfg *Config) (string, bool) {
	if name, ok := m.markers[path]; ok {
		return name, true
	}
	if cfg != nil {
		if name, ok := cfg.GatedPackages[path]; ok {
			return name, true
		}
	}
	return "", false
}

// Chain returns the shortest module-internal import chain from one
// package to a package satisfying target, importer first, or nil when
// none is reachable. from itself is not tested against target: a chain
// is at least one import long.
func (m *Module) Chain(from string, target func(string) bool) []string {
	type hop struct {
		path string
		prev *hop
	}
	visited := map[string]bool{from: true}
	queue := []*hop{{path: from}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, dep := range m.imports[cur.path] {
			if visited[dep] {
				continue
			}
			visited[dep] = true
			next := &hop{path: dep, prev: cur}
			if target(dep) {
				var chain []string
				for h := next; h != nil; h = h.prev {
					chain = append(chain, h.path)
				}
				for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
					chain[i], chain[j] = chain[j], chain[i]
				}
				return chain
			}
			queue = append(queue, next)
		}
	}
	return nil
}

// ImportPos returns the position of from's import declaration of dep,
// so graph-level diagnostics anchor at the offending import line. Falls
// back to the package's first file when the spec is not found (e.g. a
// transitive-only edge).
func (m *Module) ImportPos(from, dep string) token.Pos {
	pkg := m.byPath[from]
	if pkg == nil {
		return token.NoPos
	}
	for _, f := range pkg.Files {
		for _, spec := range f.Imports {
			if p, err := strconv.Unquote(spec.Path.Value); err == nil && p == dep {
				return spec.Pos()
			}
		}
	}
	if len(pkg.Files) > 0 {
		return pkg.Files[0].Package
	}
	return token.NoPos
}

// ModulePass carries one module-scoped analyzer's run.
type ModulePass struct {
	Analyzer *Analyzer
	Mod      *Module
	// Config is the architecture description the graph analyzers check
	// against; never nil (Module.Run substitutes an empty config).
	Config *Config

	diags *[]Diagnostic
}

// Reportf records a module-scoped diagnostic at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(pos, nil, format, args...)
}

// ReportChain records a diagnostic carrying the offending import chain
// (importer first). The chain is appended to the rendered message and
// kept structured for -json consumers.
func (p *ModulePass) ReportChain(pos token.Pos, chain []string, format string, args ...any) {
	p.report(pos, chain, format, args...)
}

func (p *ModulePass) report(pos token.Pos, chain []string, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	if len(chain) > 0 {
		msg += " (import chain: " + strings.Join(chain, " -> ") + ")"
	}
	var position token.Position
	if len(p.Mod.Pkgs) > 0 {
		position = p.Mod.Pkgs[0].Fset.Position(pos)
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     position,
		Check:   p.Analyzer.Name,
		Message: msg,
		Scope:   ScopeModule,
		Chain:   append([]string(nil), chain...),
	})
}

// Run executes the full analyzer suite — file-scoped per package,
// module-scoped once over the whole module — applies //lint:ignore
// directives from every package, and returns the surviving diagnostics
// in the stable sorted order. cfg may be nil for marker-only gating and
// no layer rules.
func (m *Module) Run(analyzers []*Analyzer, cfg *Config) []Diagnostic {
	if cfg == nil {
		cfg = &Config{}
	}
	var fileAnalyzers, moduleAnalyzers []*Analyzer
	for _, a := range analyzers {
		if a.Scope == ScopeModule {
			moduleAnalyzers = append(moduleAnalyzers, a)
		} else {
			fileAnalyzers = append(fileAnalyzers, a)
		}
	}

	diags := Run(m.Pkgs, fileAnalyzers)

	var modDiags []Diagnostic
	for _, a := range moduleAnalyzers {
		pass := &ModulePass{Analyzer: a, Mod: m, Config: cfg, diags: &modDiags}
		a.RunModule(pass)
	}
	if len(modDiags) > 0 {
		for _, pkg := range m.Pkgs {
			ign := collectIgnores(pkg)
			kept := modDiags[:0]
			for _, d := range modDiags {
				if !ign.suppresses(d) {
					kept = append(kept, d)
				}
			}
			modDiags = kept
		}
		diags = append(diags, modDiags...)
	}
	sortDiagnostics(diags)
	return diags
}
