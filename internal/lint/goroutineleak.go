package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Goroutineleak flags `go` statements in functions that show no visible
// join: no sync.WaitGroup-style Wait call, no channel receive or range,
// and no select. A goroutine that outlives its spawner keeps writing
// into shared scorecards and buffers after the report is assembled —
// exactly the failure the worker pools in internal/core and
// internal/graphalgo avoid by joining before returning. Fire-and-forget
// goroutines that are genuinely intended must carry a //lint:ignore with
// the reason.
var Goroutineleak = &Analyzer{
	Name: "goroutineleak",
	Doc:  "go statements with no visible join (WaitGroup Wait, channel receive/range, select) in the enclosing function",
	Run:  runGoroutineleak,
}

func runGoroutineleak(pass *Pass) {
	for _, fn := range functions(pass.Pkg) {
		var spawns []*ast.GoStmt
		inspectShallow(fn.body, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				spawns = append(spawns, g)
			}
			return true
		})
		if len(spawns) == 0 || hasJoin(pass.Pkg, fn.body) {
			continue
		}
		for _, g := range spawns {
			pass.Reportf(g.Pos(),
				"goroutine has no visible join in %s (no Wait, channel receive/range, or select); it may outlive its spawner", fn.name)
		}
	}
}

// hasJoin reports whether the function body (excluding nested function
// literals) contains a join point for spawned goroutines.
func hasJoin(pkg *Package, body ast.Node) bool {
	joined := false
	inspectShallow(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := calleeFunc(pkg, n); fn != nil && strings.HasSuffix(fn.Name(), "Wait") {
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					joined = true
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				joined = true
			}
		case *ast.RangeStmt:
			if tv, ok := pkg.Info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					joined = true
				}
			}
		case *ast.SelectStmt:
			joined = true
		}
		return !joined
	})
	return joined
}
