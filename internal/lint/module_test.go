package lint

import (
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// loadFixtureModule loads one mini-module under testdata/mod. Fixture
// modules carry their own go.mod so LoadModule resolves their internal
// import paths exactly like the real module's.
func loadFixtureModule(t *testing.T, name string) *Module {
	t.Helper()
	pkgs, err := LoadModule(filepath.Join("testdata", "mod", name))
	if err != nil {
		t.Fatalf("load fixture module %s: %v", name, err)
	}
	return NewModule(pkgs)
}

// runModuleFixture loads a testdata mini-module, runs one analyzer over
// it with the given config, and checks the diagnostics exactly match
// the fixture's `// want <check>` markers. Keys keep the last two path
// elements so same-named files in different packages (cmd/*/main.go)
// stay distinct. Returns the diagnostics for extra assertions.
func runModuleFixture(t *testing.T, check, name string, cfg *Config) []Diagnostic {
	t.Helper()
	m := loadFixtureModule(t, name)
	a := ByName(check)
	if a == nil {
		t.Fatalf("unknown check %q", check)
	}
	diags := m.Run([]*Analyzer{a}, cfg)

	wants := make(map[string]string)
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, wantMarker) {
						continue
					}
					wantCheck := strings.TrimSpace(strings.TrimPrefix(c.Text, wantMarker))
					pos := pkg.Fset.Position(c.Pos())
					wants[fmt.Sprintf("%s:%d", shortFile(pos.Filename), pos.Line)] = wantCheck
				}
			}
		}
	}
	got := make(map[string][]string)
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", shortFile(d.Pos.Filename), d.Pos.Line)
		got[key] = append(got[key], d.Check)
	}
	for key, wantCheck := range wants {
		found := false
		for _, c := range got[key] {
			if c == wantCheck {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: want %s diagnostic, got none", key, wantCheck)
		}
	}
	for key, checks := range got {
		if _, ok := wants[key]; !ok {
			t.Errorf("%s: unexpected %v diagnostic(s)", key, checks)
		}
	}
	if t.Failed() {
		for _, d := range diags {
			t.Logf("diagnostic: %s", d)
		}
	}
	return diags
}

// expboundaryFixtureConfig describes the expboundary mini-module: exp
// is gated by its in-source marker, exp2 by this registry-declared
// list.
func expboundaryFixtureConfig() *Config {
	return &Config{
		ExperimentsPath: "example.com/expmod/experiments",
		CommandPrefix:   "example.com/expmod/cmd/",
		GatedPackages:   map[string]string{"example.com/expmod/exp2": "listed"},
	}
}

func TestExpboundaryFixture(t *testing.T) {
	diags := runModuleFixture(t, "expboundary", "expboundary", expboundaryFixtureConfig())
	// Every expboundary finding is a direct edge: importer, then dep.
	for _, d := range diags {
		if len(d.Chain) != 2 {
			t.Errorf("want 2-element chain, got %v", d.Chain)
		}
		if d.Scope != ScopeModule {
			t.Errorf("want module scope, got %v", d.Scope)
		}
	}
}

// TestExpboundaryMarkerVsRegistry pins which gating mechanism caught
// each package: the marker names the experiment, the registry list
// names its own entry.
func TestExpboundaryMarkerVsRegistry(t *testing.T) {
	diags := runModuleFixture(t, "expboundary", "expboundary", expboundaryFixtureConfig())
	var sawMarker, sawRegistry bool
	for _, d := range diags {
		if strings.Contains(d.Message, `(experiment "turbo")`) {
			sawMarker = true
		}
		if strings.Contains(d.Message, `(experiment "listed")`) {
			sawRegistry = true
		}
	}
	if !sawMarker {
		t.Error("no diagnostic attributed to the //experiments:package marker")
	}
	if !sawRegistry {
		t.Error("no diagnostic attributed to the registry-declared gated package")
	}
}

func layeringFixtureConfig() *Config {
	return &Config{
		CommandPrefix: "example.com/layermod/cmd/",
		Forbid: []ForbidRule{{
			Name: "graph-below-core",
			Why:  "foundation layers must stay reusable",
			From: []string{"example.com/layermod/graph"},
			To:   []string{"example.com/layermod/core"},
		}},
		CommandAllow: []string{"example.com/layermod/mid", "example.com/layermod/serveish"},
		CommandRestrict: map[string][]string{
			"example.com/layermod/serveish": {"example.com/layermod/cmd/owner"},
		},
	}
}

func TestLayeringFixture(t *testing.T) {
	diags := runModuleFixture(t, "layering", "layering", layeringFixtureConfig())
	// The forbid violation is transitive: the chain must walk
	// graph -> mid -> core even though graph never imports core directly.
	wantChain := []string{
		"example.com/layermod/graph",
		"example.com/layermod/mid",
		"example.com/layermod/core",
	}
	foundChain := false
	for _, d := range diags {
		if reflect.DeepEqual(d.Chain, wantChain) {
			foundChain = true
			if !strings.Contains(d.Message, "graph -> ") {
				t.Errorf("chain missing from rendered message: %s", d.Message)
			}
		}
	}
	if !foundChain {
		t.Errorf("no diagnostic carries the full transitive chain %v; got %v", wantChain, diags)
	}
}

func TestAtomicmisuseFixture(t *testing.T) {
	diags := runModuleFixture(t, "atomicmisuse", "atomicmisuse", nil)
	// The cross-package finding must cite the atomic site in the other
	// package and suggest the matching typed atomic.
	var crossPkg bool
	for _, d := range diags {
		if strings.Contains(d.Pos.Filename, "reader") {
			crossPkg = true
			if !strings.Contains(d.Message, "counter/counter.go") {
				t.Errorf("cross-package finding does not cite the atomic site: %s", d.Message)
			}
			if !strings.Contains(d.Message, "atomic.Int64") {
				t.Errorf("finding does not suggest the typed atomic: %s", d.Message)
			}
		}
	}
	if !crossPkg {
		t.Error("no cross-package atomicmisuse finding in the reader package")
	}
}

func TestUnboundedgoroutineFixture(t *testing.T) {
	runFixture(t, "unboundedgoroutine", "unboundedgoroutine", "fixture/unboundedgoroutine")
}

// TestModuleRunSingleLoad pins the engine's core property: running the
// whole analyzer suite — file- and module-scoped — costs exactly one
// LoadModule call. An analyzer that sneaks in its own load shows up as
// a second increment.
func TestModuleRunSingleLoad(t *testing.T) {
	before := LoadCount()
	pkgs, err := LoadModule(filepath.Join("testdata", "mod", "layering"))
	if err != nil {
		t.Fatal(err)
	}
	m := NewModule(pkgs)
	_ = m.Run(All(), layeringFixtureConfig())
	_ = m.Run(All(), layeringFixtureConfig()) // re-running analyzers is load-free too
	if got := LoadCount() - before; got != 1 {
		t.Errorf("full analyzer suite cost %d loads, want exactly 1", got)
	}
}

// TestModuleChain exercises BFS shortest-chain selection directly.
func TestModuleChain(t *testing.T) {
	m := loadFixtureModule(t, "layering")
	chain := m.Chain("example.com/layermod/graph", func(p string) bool {
		return p == "example.com/layermod/core"
	})
	want := []string{
		"example.com/layermod/graph",
		"example.com/layermod/mid",
		"example.com/layermod/core",
	}
	if !reflect.DeepEqual(chain, want) {
		t.Errorf("Chain = %v, want %v", chain, want)
	}
	if c := m.Chain("example.com/layermod/core", func(p string) bool { return true }); c != nil {
		t.Errorf("leaf package should reach nothing, got %v", c)
	}
	// from itself never counts as a target: a chain is >= one import.
	self := m.Chain("example.com/layermod/graph", func(p string) bool {
		return p == "example.com/layermod/graph"
	})
	if self != nil {
		t.Errorf("self-chain should be nil, got %v", self)
	}
}

// TestModuleImportGraph checks the graph is module-internal only and
// sorted.
func TestModuleImportGraph(t *testing.T) {
	m := loadFixtureModule(t, "expboundary")
	deps := m.Imports("example.com/expmod/stable")
	want := []string{"example.com/expmod/exp", "example.com/expmod/exp2"}
	if !reflect.DeepEqual(deps, want) {
		t.Errorf("Imports(stable) = %v, want %v", deps, want)
	}
	// sync/atomic and friends never appear: stdlib edges are filtered.
	for _, p := range m.Paths() {
		for _, dep := range m.Imports(p) {
			if !strings.HasPrefix(dep, "example.com/") {
				t.Errorf("non-module edge %s -> %s leaked into the graph", p, dep)
			}
		}
	}
}

// TestGatedExperimentPrecedence: the in-source marker wins over the
// registry-declared list.
func TestGatedExperimentPrecedence(t *testing.T) {
	m := loadFixtureModule(t, "expboundary")
	cfg := &Config{GatedPackages: map[string]string{
		"example.com/expmod/exp":  "overridden",
		"example.com/expmod/exp2": "listed",
	}}
	if name, ok := m.GatedExperiment("example.com/expmod/exp", cfg); !ok || name != "turbo" {
		t.Errorf("marker should win: got %q, %v", name, ok)
	}
	if name, ok := m.GatedExperiment("example.com/expmod/exp2", cfg); !ok || name != "listed" {
		t.Errorf("registry gating: got %q, %v", name, ok)
	}
	if _, ok := m.GatedExperiment("example.com/expmod/stable", cfg); ok {
		t.Error("stable package reported as gated")
	}
}
