package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// moduleImporter resolves imports during type-checking. Module-internal
// packages come from the packages checked so far (LoadModule checks in
// dependency order, so a referenced package is always already present);
// everything else is the standard library, resolved through the
// compiler's export data with a from-source fallback for toolchains
// that don't ship it.
type moduleImporter struct {
	fset *token.FileSet
	mod  map[string]*types.Package
	std  types.Importer
	src  types.Importer
}

func newModuleImporter(fset *token.FileSet) *moduleImporter {
	return &moduleImporter{
		fset: fset,
		mod:  make(map[string]*types.Package),
		std:  importer.Default(),
	}
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := m.mod[path]; ok {
		return pkg, nil
	}
	if pkg, err := m.std.Import(path); err == nil {
		return pkg, nil
	}
	if m.src == nil {
		m.src = importer.ForCompiler(m.fset, "source", nil)
	}
	return m.src.Import(path)
}

// rawPackage is one directory's worth of parsed-but-unchecked files.
type rawPackage struct {
	path    string // import path ("example.com/mod/internal/foo")
	name    string // package name ("foo" or "foo_test")
	files   []*ast.File
	imports map[string]bool
}

// FindModuleRoot walks upward from dir to the nearest go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// modulePath extracts the module path from a go.mod file without
// depending on golang.org/x/mod.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			mod := strings.TrimSpace(rest)
			if unq, err := strconv.Unquote(mod); err == nil {
				mod = unq
			}
			if mod != "" {
				return mod, nil
			}
		}
	}
	return "", fmt.Errorf("no module directive in %s", gomod)
}

// loadCalls counts LoadModule invocations in this process. The whole
// point of the module engine is that one run parses and type-checks the
// module exactly once, shared by every analyzer scope; the load-count
// tests pin that property so an analyzer can never sneak in its own
// load. Plain int: the driver is single-threaded by construction.
var loadCalls int

// LoadCount returns the number of LoadModule calls so far.
func LoadCount() int { return loadCalls }

// LoadModule parses and type-checks every package under the module root
// (including test files; external _test packages are loaded as their own
// packages). Directories named testdata, hidden directories, and .git
// are skipped, matching the go tool's conventions.
func LoadModule(root string) ([]*Package, error) {
	loadCalls++
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	var raws []*rawPackage
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		base := filepath.Base(path)
		if path != root && (base == "testdata" || strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_")) {
			return filepath.SkipDir
		}
		dirPkgs, err := parseDir(fset, mod, root, path)
		if err != nil {
			return err
		}
		raws = append(raws, dirPkgs...)
		return nil
	})
	if err != nil {
		return nil, err
	}

	ordered, err := topoSort(raws)
	if err != nil {
		return nil, err
	}

	imp := newModuleImporter(fset)
	var pkgs []*Package
	for _, raw := range ordered {
		pkg, err := check(fset, imp, raw)
		if err != nil {
			return nil, err
		}
		// External test packages ("foo_test") are analyzable but never
		// importable, so only in-package results feed the importer.
		if !strings.HasSuffix(raw.name, "_test") {
			imp.mod[raw.path] = pkg.Types
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadPackageDir parses and type-checks a single directory as one
// package with the given import path. Used by the analyzer fixture
// tests, whose testdata packages only import the standard library.
func LoadPackageDir(dir, importPath string) (*Package, error) {
	fset := token.NewFileSet()
	raws, err := parseDir(fset, "", "", dir)
	if err != nil {
		return nil, err
	}
	if len(raws) != 1 {
		return nil, fmt.Errorf("%s: want exactly one package, got %d", dir, len(raws))
	}
	raws[0].path = importPath
	return check(fset, newModuleImporter(fset), raws[0])
}

// parseDir parses every .go file in dir (non-recursively) and groups the
// files into at most two raw packages: the primary package and, when
// present, the external "_test" package.
func parseDir(fset *token.FileSet, mod, root, dir string) ([]*rawPackage, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	byName := make(map[string]*rawPackage)
	var order []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		file, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		name := file.Name.Name
		raw := byName[name]
		if raw == nil {
			path := name
			if mod != "" {
				rel, err := filepath.Rel(root, dir)
				if err != nil {
					return nil, err
				}
				path = mod
				if rel != "." {
					path = mod + "/" + filepath.ToSlash(rel)
				}
				if strings.HasSuffix(name, "_test") {
					path += ".test"
				}
			}
			raw = &rawPackage{path: path, name: name, imports: make(map[string]bool)}
			byName[name] = raw
			order = append(order, name)
		}
		raw.files = append(raw.files, file)
		for _, spec := range file.Imports {
			p, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				return nil, fmt.Errorf("%s: bad import %s", e.Name(), spec.Path.Value)
			}
			raw.imports[p] = true
		}
	}
	sort.Strings(order)
	var raws []*rawPackage
	for _, name := range order {
		raws = append(raws, byName[name])
	}
	return raws, nil
}

// topoSort orders the raw packages so every module-internal import is
// checked before its importer. Standard-library imports are ignored —
// the importer resolves those on demand.
func topoSort(raws []*rawPackage) ([]*rawPackage, error) {
	// External test packages sort after everything since they can import
	// any module package but never appear as an import themselves.
	byPath := make(map[string]*rawPackage, len(raws))
	for _, r := range raws {
		byPath[r.path] = r
	}
	var ordered []*rawPackage
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(r *rawPackage) error
	visit = func(r *rawPackage) error {
		switch state[r.path] {
		case 1:
			return fmt.Errorf("import cycle through %s", r.path)
		case 2:
			return nil
		}
		state[r.path] = 1
		deps := make([]string, 0, len(r.imports))
		for p := range r.imports {
			deps = append(deps, p)
		}
		sort.Strings(deps)
		for _, p := range deps {
			if dep, ok := byPath[p]; ok {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[r.path] = 2
		ordered = append(ordered, r)
		return nil
	}
	// Stable input order: primary packages sorted by path, then the
	// external test packages.
	sorted := make([]*rawPackage, len(raws))
	copy(sorted, raws)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].path < sorted[j].path })
	for _, r := range sorted {
		if err := visit(r); err != nil {
			return nil, err
		}
	}
	return ordered, nil
}

// check type-checks one raw package.
func check(fset *token.FileSet, imp types.Importer, raw *rawPackage) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(raw.path, fset, raw.files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type-check %s: %w", raw.path, typeErrs[0])
	}
	return &Package{
		Path:  raw.path,
		Fset:  fset,
		Files: raw.files,
		Types: tpkg,
		Info:  info,
	}, nil
}
