// Package lint implements circlelint, the project's determinism and
// concurrency static-analysis pass. It is built purely on the standard
// library (go/parser, go/ast, go/types, go/importer) because the module
// carries zero third-party dependencies and must stay that way.
//
// The reproduction's headline guarantee is byte-identical reports at a
// given seed regardless of worker count. That property is easy to break
// silently — an unordered map iteration feeding a report, a wall-clock
// seed, a float equality test on the edge of rounding — so the checks
// here enforce it mechanically instead of by code review:
//
//	maporder      range over a map feeding an output sink or returned slice
//	globalrng     math/rand global functions and wall-clock-seeded sources
//	walltime      time.Now / time.Since in non-test code
//	floateq       == / != between floating-point operands
//	goroutineleak go statements with no visible join in the function
//	ctxfirst      exported functions taking context.Context anywhere but first
//	unboundedgoroutine go statements fanning out per loop iteration with no bound
//
// Those are file-scoped: each inspects one package at a time. The
// engine also runs module-scoped analyzers, which see every package of
// the module at once — shared cross-package type information plus the
// explicit import graph built by NewModule — from a single load
// (LoadModule parses and type-checks the module exactly once per run):
//
//	expboundary  stable packages importing experiment-gated ones
//	layering     declarative layer map over the import graph, chains reported
//	atomicmisuse a field accessed via sync/atomic in one place, plainly in another
//
// A finding can be suppressed with a directive comment on the offending
// line or the line above it:
//
//	//lint:ignore <check> <reason>
//
// The reason is mandatory; a directive without one is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Scope says how much of the module an analyzer needs to see at once.
type Scope int

const (
	// ScopeFile analyzers inspect one package at a time; they run per
	// package with that package's own type information.
	ScopeFile Scope = iota
	// ScopeModule analyzers see the whole module: every package, the
	// shared type information, and the import graph.
	ScopeModule
)

// String renders the scope the way `circlelint -json` reports it.
func (s Scope) String() string {
	if s == ScopeModule {
		return "module"
	}
	return "file"
}

// Diagnostic is one finding at a resolved source position.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
	// Scope records which kind of analyzer produced the finding.
	Scope Scope
	// Chain is the offending module-internal import chain, importer
	// first, for graph-level findings (layering, expboundary); nil for
	// AST-level ones.
	Chain []string
}

// String formats the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Pass carries one analyzer's run over one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags *[]Diagnostic
}

// Reportf records a diagnostic for the running analyzer at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Pkg.Fset.Position(pos),
		Check:   p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// Analyzer is one named check. File-scoped analyzers set Run;
// module-scoped ones set Scope to ScopeModule and RunModule instead.
type Analyzer struct {
	Name  string
	Doc   string
	Scope Scope
	// Run executes a file-scoped analyzer over one package.
	Run func(*Pass)
	// RunModule executes a module-scoped analyzer over the whole module.
	RunModule func(*ModulePass)
}

// All returns the full analyzer suite in stable order: the file-scoped
// checks first, then the module-scoped ones.
func All() []*Analyzer {
	return []*Analyzer{
		Maporder,
		Globalrng,
		Walltime,
		Floateq,
		Goroutineleak,
		Ctxfirst,
		Unboundedgoroutine,
		Expboundary,
		Layering,
		Atomicmisuse,
	}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run executes the file-scoped analyzers over every package, applies
// the //lint:ignore directives, and returns the surviving diagnostics
// sorted by position then check name. Module-scoped analyzers in the
// list are skipped — they need the import graph, so they run through
// Module.Run.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ign := collectIgnores(pkg)
		diags = append(diags, ign.malformed...)
		var pkgDiags []Diagnostic
		for _, a := range analyzers {
			if a.Scope != ScopeFile {
				continue
			}
			pass := &Pass{Analyzer: a, Pkg: pkg, diags: &pkgDiags}
			a.Run(pass)
		}
		for _, d := range pkgDiags {
			if !ign.suppresses(d) {
				diags = append(diags, d)
			}
		}
	}
	sortDiagnostics(diags)
	return diags
}

// sortDiagnostics orders findings by position then check name, the
// stable order every entry point emits.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
}
