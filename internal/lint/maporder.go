package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Maporder flags `range` over a map whose iteration order can leak into
// program output: a loop body that writes to an io.Writer / fmt sink, or
// a loop that appends into a slice the enclosing function returns
// without sorting it first. Go randomizes map iteration order on every
// run, so either pattern breaks the byte-identical-report guarantee —
// this is the exact bug class once fixed by hand in runRobustness.
var Maporder = &Analyzer{
	Name: "maporder",
	Doc:  "range over a map feeding an output sink or an unsorted returned slice",
	Run:  runMaporder,
}

func runMaporder(pass *Pass) {
	for _, fn := range functions(pass.Pkg) {
		fn := fn
		inspectShallow(fn.body, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Pkg.Info.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if sink, what := outputSink(pass.Pkg, rng.Body); sink {
				pass.Reportf(rng.Pos(),
					"map iteration order is randomized but this loop writes to %s; iterate over sorted keys instead", what)
				return true
			}
			for _, target := range appendTargets(pass.Pkg, rng.Body) {
				if returnsVar(pass.Pkg, fn.body, target) && !sortedInFunc(pass.Pkg, fn.body, target) {
					pass.Reportf(rng.Pos(),
						"map iteration order is randomized but this loop builds returned slice %q without sorting it; sort before returning", target.Name())
				}
			}
			return true
		})
	}
}

// outputSink reports whether body contains a write to an ordered output:
// an fmt formatting call or a Write* method on an io.Writer.
func outputSink(pkg *Package, body ast.Node) (bool, string) {
	found := false
	what := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pkg, call)
		if fn == nil {
			return true
		}
		if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && isFormatting(fn.Name()) {
			found, what = true, "fmt."+fn.Name()
			return false
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil &&
			strings.HasPrefix(fn.Name(), "Write") && implementsWriter(sig.Recv().Type()) {
			found, what = true, "an io.Writer via "+fn.Name()
			return false
		}
		return true
	})
	return found, what
}

// isFormatting reports whether name is an fmt function that renders its
// operands (Print*, Fprint*, Sprint*, Errorf, Append*).
func isFormatting(name string) bool {
	for _, prefix := range []string{"Print", "Fprint", "Sprint", "Errorf", "Append"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// appendTargets returns the variables that body grows via x = append(x, ...).
func appendTargets(pkg *Package, body ast.Node) []*types.Var {
	var targets []*types.Var
	seen := make(map[*types.Var]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || (asg.Tok != token.ASSIGN && asg.Tok != token.DEFINE) {
			return true
		}
		for i, rhs := range asg.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok {
				continue
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" || pkg.Info.Uses[id] != types.Universe.Lookup("append") {
				continue
			}
			if i >= len(asg.Lhs) {
				continue
			}
			if v := exprObj(pkg, asg.Lhs[i]); v != nil && !seen[v] {
				seen[v] = true
				targets = append(targets, v)
			}
		}
		return true
	})
	return targets
}

// returnsVar reports whether any return statement in the function body
// mentions v.
func returnsVar(pkg *Package, body ast.Node, v *types.Var) bool {
	found := false
	inspectShallow(body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return !found
		}
		for _, res := range ret.Results {
			ast.Inspect(res, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && pkg.Info.Uses[id] == v {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// sortedInFunc reports whether the function body passes v to a sort or
// slices ordering function before use.
func sortedInFunc(pkg *Package, body ast.Node, v *types.Var) bool {
	found := false
	inspectShallow(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		fn := calleeFunc(pkg, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if exprObj(pkg, arg) == v {
				found = true
			}
		}
		return !found
	})
	return found
}
