package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// funcNode is one function body under analysis: a declaration or a
// literal, with a printable name for diagnostics.
type funcNode struct {
	node ast.Node
	body *ast.BlockStmt
	name string
}

// functions yields every function declaration and function literal in
// the package, in source order.
func functions(pkg *Package) []funcNode {
	var fns []funcNode
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					fns = append(fns, funcNode{node: fn, body: fn.Body, name: fn.Name.Name})
				}
			case *ast.FuncLit:
				fns = append(fns, funcNode{node: fn, body: fn.Body, name: "function literal"})
			}
			return true
		})
	}
	return fns
}

// inspectShallow walks the statements of body but does not descend into
// nested function literals, whose statements belong to the nested
// function, not this one.
func inspectShallow(body ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != body {
			return false
		}
		return fn(n)
	})
}

// calleeFunc resolves a call expression to the *types.Func it invokes,
// or nil for calls through function-typed values, conversions, and
// builtins.
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pkg.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = pkg.Info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is the package-level function path.name.
func isPkgFunc(fn *types.Func, path, name string) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() != path || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// ioWriterType is a structural stand-in for io.Writer, so analyzers can
// test "implements io.Writer" without importing io's type data.
var ioWriterType = func() *types.Interface {
	errType := types.Universe.Lookup("error").Type()
	sig := types.NewSignatureType(nil, nil, nil,
		types.NewTuple(types.NewVar(token.NoPos, nil, "p", types.NewSlice(types.Typ[types.Byte]))),
		types.NewTuple(
			types.NewVar(token.NoPos, nil, "n", types.Typ[types.Int]),
			types.NewVar(token.NoPos, nil, "err", errType),
		), false)
	iface := types.NewInterfaceType([]*types.Func{
		types.NewFunc(token.NoPos, nil, "Write", sig),
	}, nil)
	iface.Complete()
	return iface
}()

// implementsWriter reports whether t (or *t) satisfies io.Writer.
func implementsWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	if types.Implements(t, ioWriterType) {
		return true
	}
	if _, ok := t.(*types.Pointer); !ok {
		return types.Implements(types.NewPointer(t), ioWriterType)
	}
	return false
}

// isFloat reports whether t's core type is a floating-point scalar.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0 && basic.Info()&types.IsComplex == 0
}

// exprObj resolves an expression to the variable object it denotes, or
// nil for anything that is not a plain identifier.
func exprObj(pkg *Package, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := pkg.Info.Uses[id].(*types.Var)
	if v == nil {
		v, _ = pkg.Info.Defs[id].(*types.Var)
	}
	return v
}
