package lint

import (
	"go/ast"
	"go/token"
)

// Unboundedgoroutine flags `go` statements that fan out once per loop
// iteration with no visible bound on concurrency: a `range` loop (or a
// condition-only / infinite `for`) spawning a goroutine per element can
// launch as many goroutines as the input has items — the load-dependent
// blowup the bounded pools in internal/serve and internal/graphalgo
// exist to prevent. The check recognizes the project's two bounded
// idioms and stays silent for them:
//
//   - a 3-clause counter loop (`for i := 0; i < workers; i++`), the
//     fixed-width worker pool;
//   - a semaphore acquire in the loop body outside the go statement (a
//     channel send or receive executed before spawning).
//
// Genuinely unbounded fan-out that is intended must carry a
// //lint:ignore with the reason.
var Unboundedgoroutine = &Analyzer{
	Name: "unboundedgoroutine",
	Doc:  "go statements spawning once per loop iteration with no bounded pool or semaphore in scope",
	Run:  runUnboundedgoroutine,
}

func runUnboundedgoroutine(pass *Pass) {
	for _, fn := range functions(pass.Pkg) {
		inspectShallow(fn.body, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch loop := n.(type) {
			case *ast.RangeStmt:
				body = loop.Body
			case *ast.ForStmt:
				// A 3-clause counter loop is the fixed-width pool idiom:
				// the iteration count, not the workload, bounds the spawns.
				if loop.Init != nil && loop.Post != nil {
					return true
				}
				body = loop.Body
			default:
				return true
			}
			spawns := loopSpawns(body)
			if len(spawns) == 0 || hasSemaphoreOp(body) {
				return true
			}
			for _, g := range spawns {
				pass.Reportf(g.Pos(),
					"goroutine spawned once per loop iteration with no visible bound in %s (no fixed-width pool or semaphore); fan-out grows with the input", fn.name)
			}
			return true
		})
	}
}

// loopSpawns collects the go statements in a loop body, not descending
// into nested function literals or nested loops (a nested loop is
// re-examined as its own candidate).
func loopSpawns(body *ast.BlockStmt) []*ast.GoStmt {
	var spawns []*ast.GoStmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			return false
		case *ast.GoStmt:
			spawns = append(spawns, n)
		}
		return true
	})
	return spawns
}

// hasSemaphoreOp reports whether the loop body performs a channel send
// or receive outside the spawned goroutines — the token-acquire half of
// the semaphore idiom, which blocks the loop once the bound is reached.
func hasSemaphoreOp(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		}
		return !found
	})
	return found
}
