package lint

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// wantMarker tags a fixture line that expects a diagnostic:
//
//	expr // want <check>
const wantMarker = "// want "

// collectWants scans a fixture package for `// want <check>` markers and
// returns them keyed by "file:line".
func collectWants(pkg *Package) map[string]string {
	wants := make(map[string]string)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, wantMarker) {
					continue
				}
				check := strings.TrimSpace(strings.TrimPrefix(c.Text, wantMarker))
				pos := pkg.Fset.Position(c.Pos())
				wants[fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)] = check
			}
		}
	}
	return wants
}

// runFixture loads one testdata package and checks the analyzer's
// diagnostics exactly match the want markers.
func runFixture(t *testing.T, check, dir, importPath string) {
	t.Helper()
	pkg, err := LoadPackageDir(filepath.Join("testdata", "src", dir), importPath)
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	a := ByName(check)
	if a == nil {
		t.Fatalf("unknown check %q", check)
	}
	diags := Run([]*Package{pkg}, []*Analyzer{a})

	wants := collectWants(pkg)
	got := make(map[string][]string)
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", filepath.Base(d.Pos.Filename), d.Pos.Line)
		got[key] = append(got[key], d.Check)
	}
	for key, wantCheck := range wants {
		found := false
		for _, c := range got[key] {
			if c == wantCheck {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: want %s diagnostic, got none", key, wantCheck)
		}
	}
	for key, checks := range got {
		if _, ok := wants[key]; !ok {
			t.Errorf("%s: unexpected %v diagnostic(s)", key, checks)
		}
	}
	if t.Failed() {
		for _, d := range diags {
			t.Logf("diagnostic: %s", d)
		}
	}
}

func TestMaporderFixture(t *testing.T)  { runFixture(t, "maporder", "maporder", "fixture/maporder") }
func TestGlobalrngFixture(t *testing.T) { runFixture(t, "globalrng", "globalrng", "fixture/globalrng") }
func TestWalltimeFixture(t *testing.T)  { runFixture(t, "walltime", "walltime", "fixture/walltime") }
func TestFloateqFixture(t *testing.T)   { runFixture(t, "floateq", "floateq", "fixture/floateq") }
func TestGoroutineleakFixture(t *testing.T) {
	runFixture(t, "goroutineleak", "goroutineleak", "fixture/goroutineleak")
}
func TestCtxfirstFixture(t *testing.T) { runFixture(t, "ctxfirst", "ctxfirst", "fixture/ctxfirst") }

// TestFloateqStatsAllowlist checks the approved-tolerance-helper carveout:
// under an internal/stats import path the allowlisted helper is exempt
// but other functions are still flagged.
func TestFloateqStatsAllowlist(t *testing.T) {
	runFixture(t, "floateq", "floateq_stats", "fixture/internal/stats")
}

// TestIgnoreDirectiveMalformed checks that a reason-less or unknown
// directive is itself reported instead of silently suppressing.
func TestIgnoreDirectiveMalformed(t *testing.T) {
	pkg, err := LoadPackageDir(filepath.Join("testdata", "src", "ignore"), "fixture/ignore")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	diags := Run([]*Package{pkg}, All())
	var gotChecks []string
	for _, d := range diags {
		gotChecks = append(gotChecks, fmt.Sprintf("%s:%d", d.Check, d.Pos.Line))
	}
	sort.Strings(gotChecks)
	// The file has: a reason-less directive (reported, and the walltime
	// finding it failed to suppress also reported), an unknown-check
	// directive (reported), and one well-formed suppression (silent).
	wantSubstrings := []string{"ignore:", "walltime:"}
	for _, want := range wantSubstrings {
		found := false
		for _, g := range gotChecks {
			if strings.HasPrefix(g, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("want a %q diagnostic, got %v", want, gotChecks)
		}
	}
	// Two malformed directives -> two "ignore" diagnostics.
	ignores := 0
	for _, g := range gotChecks {
		if strings.HasPrefix(g, "ignore:") {
			ignores++
		}
	}
	if ignores != 2 {
		t.Errorf("want 2 ignore diagnostics, got %d (%v)", ignores, gotChecks)
	}
	// The well-formed suppression must actually suppress: exactly one
	// walltime finding survives out of the two in the fixture.
	walltimes := 0
	for _, g := range gotChecks {
		if strings.HasPrefix(g, "walltime:") {
			walltimes++
		}
	}
	if walltimes != 1 {
		t.Errorf("want exactly 1 surviving walltime diagnostic, got %d (%v)", walltimes, gotChecks)
	}
}

// TestRepoIsLintClean runs the full analyzer suite — file-scoped and
// module-scoped, against the repo's own layer map — over the whole
// module, the same gate as `make lint`, and demands zero findings. Any
// new nondeterminism pattern or architecture violation must be fixed
// or carry a reasoned //lint:ignore before it can land.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type-check in -short mode")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	analyzers := All()
	if len(analyzers) < 10 {
		t.Fatalf("analyzer suite shrank to %d; expboundary/layering/atomicmisuse must stay in the gate", len(analyzers))
	}
	for _, d := range NewModule(pkgs).Run(analyzers, DefaultConfig()) {
		t.Errorf("%s", d)
	}
}

// TestDiagnosticsSorted checks Run's output ordering is deterministic.
func TestDiagnosticsSorted(t *testing.T) {
	pkg, err := LoadPackageDir(filepath.Join("testdata", "src", "maporder"), "fixture/maporder")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run([]*Package{pkg}, All())
	if !sort.SliceIsSorted(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Pos.Column <= b.Pos.Column
	}) {
		t.Errorf("diagnostics not sorted: %v", diags)
	}
}
