package lint

import (
	"go/token"
	"strconv"
	"strings"
)

// ignorePrefix opens a suppression directive:
//
//	//lint:ignore <check> <reason>
//
// The directive silences diagnostics of the named check on its own line
// and on the line immediately below, so it works both as a trailing
// comment and as a comment above the offending statement. The reason is
// mandatory: a suppression nobody can justify is a suppression nobody
// can audit.
const ignorePrefix = "//lint:ignore"

// ignoreSet indexes the directives of one package by file, line and
// check name.
type ignoreSet struct {
	// byLine maps filename -> line -> set of suppressed check names.
	byLine    map[string]map[int]map[string]bool
	malformed []Diagnostic
}

func (s *ignoreSet) suppresses(d Diagnostic) bool {
	lines := s.byLine[d.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		if lines[line][d.Check] {
			return true
		}
	}
	return false
}

// collectIgnores scans every comment in the package for directives.
func collectIgnores(pkg *Package) *ignoreSet {
	set := &ignoreSet{byLine: make(map[string]map[int]map[string]bool)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				fields := strings.Fields(rest)
				pos := pkg.Fset.Position(c.Pos())
				if len(fields) < 2 {
					set.malformed = append(set.malformed, Diagnostic{
						Pos:     pos,
						Check:   "ignore",
						Message: "malformed directive: want //lint:ignore <check> <reason>",
					})
					continue
				}
				check := fields[0]
				if ByName(check) == nil {
					set.malformed = append(set.malformed, Diagnostic{
						Pos:     pos,
						Check:   "ignore",
						Message: "directive names unknown check " + strconv.Quote(check),
					})
					continue
				}
				lines := set.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					set.byLine[pos.Filename] = lines
				}
				checks := lines[pos.Line]
				if checks == nil {
					checks = make(map[string]bool)
					lines[pos.Line] = checks
				}
				checks[check] = true
			}
		}
	}
	return set
}

// isTestFile reports whether pos sits in a _test.go file.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}
