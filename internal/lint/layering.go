package lint

import (
	"sort"
	"strings"
)

// Layering checks the declarative layer map (Config.Forbid,
// Config.CommandAllow, Config.CommandRestrict) against the module's
// import graph. Forbid rules are transitive — no import chain may lead
// from a From package to a To package, and a violation reports the full
// offending chain, not just the first edge — while the command
// allowlist binds direct imports: binaries touch only the blessed
// seams, so refactors behind those seams never ripple into cmd/.
// CommandRestrict narrows individual seams further, to the command
// packages that own them. The map lives in code (DefaultConfig) so the
// repo's architecture is a tested invariant, not a convention.
var Layering = &Analyzer{
	Name:      "layering",
	Doc:       "import-graph layer violations against the declarative layer map, full chains reported",
	Scope:     ScopeModule,
	RunModule: runLayering,
}

func runLayering(pass *ModulePass) {
	cfg := pass.Config
	// Sorted so multi-pattern restrictions report deterministically.
	restrictKeys := make([]string, 0, len(cfg.CommandRestrict))
	for k := range cfg.CommandRestrict {
		restrictKeys = append(restrictKeys, k)
	}
	sort.Strings(restrictKeys)
	for _, from := range pass.Mod.Paths() {
		if isExternalTestPkg(from) {
			continue
		}
		for i := range cfg.Forbid {
			rule := &cfg.Forbid[i]
			if !matchAny(from, rule.From) || matchAny(from, rule.To) {
				continue
			}
			chain := pass.Mod.Chain(from, func(p string) bool {
				return matchAny(p, rule.To) && !isExternalTestPkg(p)
			})
			if chain == nil {
				continue
			}
			why := rule.Why
			if why == "" {
				why = "forbidden by the layer map"
			}
			pass.ReportChain(pass.Mod.ImportPos(from, chain[1]), chain,
				"layer rule %q: %s must not reach %s — %s",
				rule.Name, from, chain[len(chain)-1], why)
		}
		if cfg.CommandPrefix != "" && strings.HasPrefix(from, cfg.CommandPrefix) {
			for _, dep := range pass.Mod.Imports(from) {
				if len(cfg.CommandAllow) > 0 && !matchAny(dep, cfg.CommandAllow) {
					pass.ReportChain(pass.Mod.ImportPos(from, dep), []string{from, dep},
						"command %s imports %s, which is not a blessed seam; reach it through the allowed packages or bless it in the layer map",
						from, dep)
					continue
				}
				for _, pattern := range restrictKeys {
					if matchPattern(dep, pattern) && !matchAny(from, cfg.CommandRestrict[pattern]) {
						pass.ReportChain(pass.Mod.ImportPos(from, dep), []string{from, dep},
							"command %s imports %s, a seam restricted to %s; use its contract package instead",
							from, dep, strings.Join(cfg.CommandRestrict[pattern], ", "))
					}
				}
			}
		}
	}
}
