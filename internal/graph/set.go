package graph

import "sort"

// Set is a set of dense vertex indices backed by a bitmap plus a member
// slice, sized for repeated membership tests during scoring. The zero Set
// is not usable; construct with NewSet.
type Set struct {
	words   []uint64
	members []VID
}

// NewSet returns an empty Set able to hold vertices in [0, n).
func NewSet(n int) *Set {
	return &Set{words: make([]uint64, (n+63)/64)}
}

// SetOf builds a Set over a graph view's vertex range from the given
// members. Duplicate members are ignored.
func SetOf(g View, members []VID) *Set {
	s := NewSet(g.NumVertices())
	for _, v := range members {
		s.Add(v)
	}
	return s
}

// Add inserts v. Adding an existing member is a no-op.
func (s *Set) Add(v VID) {
	w, bit := v>>6, uint64(1)<<(uint(v)&63)
	if s.words[w]&bit != 0 {
		return
	}
	s.words[w] |= bit
	s.members = append(s.members, v)
}

// Contains reports membership of v.
func (s *Set) Contains(v VID) bool {
	return s.words[v>>6]&(uint64(1)<<(uint(v)&63)) != 0
}

// Len returns the number of members, n_C in the paper's nomenclature.
func (s *Set) Len() int { return len(s.members) }

// Members returns the member slice in insertion order. Callers must not
// modify it.
func (s *Set) Members() []VID { return s.members }

// SortedMembers returns a fresh, ascending copy of the members.
func (s *Set) SortedMembers() []VID {
	out := make([]VID, len(s.members))
	copy(out, s.members)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clear empties the set while retaining capacity, allowing reuse across
// many groups without reallocating the bitmap.
func (s *Set) Clear() {
	for _, v := range s.members {
		s.words[v>>6] &^= uint64(1) << (uint(v) & 63)
	}
	s.members = s.members[:0]
}

// Fill replaces the set contents with the given members.
func (s *Set) Fill(members []VID) {
	s.Clear()
	for _, v := range members {
		s.Add(v)
	}
}

// CutStats holds the edge statistics of a vertex set C within a graph,
// using the paper's nomenclature (Table I).
type CutStats struct {
	N         int   // n_C: vertices in C
	Internal  int64 // m_C: edges (arcs) with both endpoints in C
	Boundary  int64 // c_C: edges (arcs) with exactly one endpoint in C
	DegreeSum int64 // sum of d(v) over v in C
}

// Cut computes the internal/boundary edge statistics of the set within g,
// which may be a *Graph or any other View — in particular an Overlay, so
// null-model samples are scored without materializing them as graphs.
//
// For directed graphs, Internal counts arcs with both endpoints in C and
// Boundary counts arcs with exactly one endpoint in C (in either
// direction). For undirected graphs the counts are in edges. This is the
// single primitive all four scoring functions are built on.
func Cut(g View, s *Set) CutStats {
	var st CutStats
	st.N = s.Len()
	directed := g.Directed()
	for _, u := range s.members {
		st.DegreeSum += int64(g.Degree(u))
		for _, v := range g.OutNeighbors(u) {
			if s.Contains(v) {
				st.Internal++
			} else {
				st.Boundary++
			}
		}
		if directed {
			// Arcs entering C from outside.
			for _, v := range g.InNeighbors(u) {
				if !s.Contains(v) {
					st.Boundary++
				}
			}
		} else {
			// Undirected adjacency is symmetric: internal edges were
			// visited from both endpoints, boundary edges once.
			continue
		}
	}
	if !directed {
		st.Internal /= 2
	}
	return st
}
