package graph

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"gpluscircles/internal/obs"
)

// Stream-builder errors. ErrStreamPass flags API misuse (wrong phase),
// ErrStreamMismatch a pass-2 edge stream that does not replay the pass-1
// multiset, and ErrStreamRange a vertex outside the declared dense range.
var (
	ErrStreamPass     = errors.New("graph: stream builder phase error")
	ErrStreamMismatch = errors.New("graph: pass-2 edge stream differs from pass 1")
	ErrStreamRange    = errors.New("graph: vertex outside declared dense range")
)

// StreamOptions configures a StreamBuilder.
type StreamOptions struct {
	// DenseVertices > 0 declares the vertex universe up front: external
	// IDs are exactly [0, DenseVertices), every vertex exists (AddVertex
	// is unnecessary), no interning map is built, and AddEdge is safe for
	// concurrent use from multiple goroutines. 0 selects the sparse mode:
	// arbitrary int64 IDs interned exactly like Builder, single-goroutine
	// streaming only.
	DenseVertices int64
	// SpillDir, when non-empty, buffers the pass-1 edge stream in
	// temporary files under that directory and Finish replays them
	// internally — the caller streams every edge once. Empty selects the
	// replay protocol: the caller streams the edges, calls Rewind, and
	// streams the identical edge multiset again before Finish. Replay
	// suits regenerable streams (deterministic generators); spill suits
	// streams that are expensive or impossible to reproduce.
	SpillDir string
	// Workers bounds the parallelism of the finishing phase (per-row
	// sort/dedup, compaction, spill replay). 0 selects GOMAXPROCS.
	Workers int
}

// StreamBuilder constructs an immutable Graph from two passes over an
// edge stream without ever materializing the edge list: pass 1 counts
// per-vertex degrees, pass 2 writes endpoints straight into the final
// CSR adjacency. Peak memory is O(n + m·sizeof(VID)) — the offsets,
// cursors, and the adjacency the Graph keeps anyway — instead of
// Builder's O(m·16B) raw-edge slice plus vertex-map overhead. For the
// same edge multiset it produces a Graph bit-identical to Builder's
// (same dedup, self-loop, ordering, and ID-interning semantics).
//
// Protocol (replay mode):
//
//	sb, _ := NewStreamBuilder(directed, StreamOptions{DenseVertices: n})
//	stream(sb.AddEdge)     // pass 1: counting
//	sb.Rewind()
//	stream(sb.AddEdge)     // pass 2: identical multiset, any order
//	g, err := sb.Finish()
//
// Protocol (spill mode): stream once, then Finish; the builder replays
// its spill files itself. In dense mode concurrent producers either call
// AddEdge directly (replay mode) or hold one EdgeSink each (spill mode,
// so spill writes stay unsynchronized). Rewind and Finish must not be
// called concurrently with AddEdge.
type StreamBuilder struct {
	directed bool
	dense    bool
	workers  int

	pass int32 // 1 = counting, 2 = filling

	// Sparse-mode interning (nil in dense mode). During pass 1 index maps
	// external ID -> provisional index in first-seen order; Rewind remaps
	// it to final ascending-ID order.
	index map[int64]VID
	ids   []int64

	n      int64   // vertex count (fixed in dense mode, grows in sparse)
	outCnt []int64 // pass-1 degree counts, indexed by (provisional) vertex
	inCnt  []int64 // directed only

	outOff, inOff   []int64
	outNext, inNext []int64 // pass-2 fill cursors, advanced atomically
	outAdj, inAdj   []VID

	spillDir   string
	spillWide  bool // spill records are 2×int64 instead of 2×uint32
	spillBytes atomic.Int64

	mu          sync.Mutex
	sinks       []*EdgeSink
	spills      []string
	defaultSink *EdgeSink

	err atomic.Pointer[error]

	mPass1, mPass2 *obs.Counter
	gSpill, gPeak  *obs.Gauge
}

// NewStreamBuilder returns a StreamBuilder for a directed or undirected
// graph. See StreamOptions for the dense/sparse and spill/replay modes.
func NewStreamBuilder(directed bool, opts StreamOptions) (*StreamBuilder, error) {
	if opts.DenseVertices < 0 || opts.DenseVertices > math.MaxInt32 {
		return nil, fmt.Errorf("%w: DenseVertices %d outside [0, %d]",
			ErrStreamRange, opts.DenseVertices, math.MaxInt32)
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sb := &StreamBuilder{
		directed: directed,
		workers:  workers,
		pass:     1,
		spillDir: opts.SpillDir,
	}
	if opts.DenseVertices > 0 {
		sb.dense = true
		sb.n = opts.DenseVertices
		sb.outCnt = make([]int64, sb.n)
		if directed {
			sb.inCnt = make([]int64, sb.n)
		}
		// Dense IDs fit in uint32, so spill records are half-width.
		sb.spillWide = false
	} else {
		sb.index = make(map[int64]VID)
		sb.spillWide = true
	}
	return sb, nil
}

// Instrument attaches observability handles: edge counters for each pass
// plus gauges for spill bytes written and the builder's peak working-set
// estimate. All handles may be nil (no-ops); call before streaming.
func (sb *StreamBuilder) Instrument(pass1, pass2 *obs.Counter, spillBytes, peakBytes *obs.Gauge) {
	sb.mPass1, sb.mPass2 = pass1, pass2
	sb.gSpill, sb.gPeak = spillBytes, peakBytes
}

// setErr records the first error; later ones are dropped.
func (sb *StreamBuilder) setErr(err error) {
	sb.err.CompareAndSwap(nil, &err)
}

func (sb *StreamBuilder) takeErr() error {
	if p := sb.err.Load(); p != nil {
		return *p
	}
	return nil
}

// AddVertex registers an isolated vertex. In dense mode every vertex in
// [0, DenseVertices) already exists, so this only validates the range.
// Sparse mode interns the ID during pass 1 exactly like Builder.
func (sb *StreamBuilder) AddVertex(id int64) {
	if sb.dense {
		if id < 0 || id >= sb.n {
			sb.setErr(fmt.Errorf("%w: vertex %d with %d dense vertices", ErrStreamRange, id, sb.n))
		}
		return
	}
	if sb.pass == 1 {
		sb.intern(id)
		return
	}
	if _, ok := sb.index[id]; !ok {
		sb.setErr(fmt.Errorf("%w: vertex %d appears only in pass 2", ErrStreamMismatch, id))
	}
}

// AddEdge streams the arc (u,v) (directed) or edge {u,v} (undirected).
// Self-loops are ignored; duplicates are deduplicated at Finish, matching
// Builder. In dense replay mode AddEdge is safe for concurrent use; in
// spill mode concurrent producers must write through per-goroutine
// EdgeSinks instead. Errors (range violations, pass-2 mismatches) are
// latched and reported by Finish.
func (sb *StreamBuilder) AddEdge(u, v int64) {
	if sb.spillDir != "" && sb.pass == 1 {
		sb.sharedSink().AddEdge(u, v)
		return
	}
	sb.addEdge(u, v, nil)
}

// sharedSink lazily creates the sink backing plain AddEdge calls in
// spill mode (serial producers only; concurrent producers use NewSink).
func (sb *StreamBuilder) sharedSink() *EdgeSink {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	if sb.defaultSink == nil {
		s, err := sb.newSinkLocked()
		if err != nil {
			sb.setErr(err)
			s = &EdgeSink{sb: sb} // degraded: counts but cannot spill
		}
		sb.defaultSink = s
	}
	return sb.defaultSink
}

// addEdge is the shared pass-dispatching core. sink is non-nil when the
// caller holds an EdgeSink whose spill file should receive the edge.
func (sb *StreamBuilder) addEdge(u, v int64, sink *EdgeSink) {
	if u == v {
		return
	}
	if sb.pass == 1 {
		if sb.dense {
			if u < 0 || u >= sb.n || v < 0 || v >= sb.n {
				sb.setErr(fmt.Errorf("%w: edge (%d,%d) with %d dense vertices", ErrStreamRange, u, v, sb.n))
				return
			}
			atomic.AddInt64(&sb.outCnt[u], 1)
			if sb.directed {
				atomic.AddInt64(&sb.inCnt[v], 1)
			} else {
				atomic.AddInt64(&sb.outCnt[v], 1)
			}
		} else {
			pu, pv := sb.intern(u), sb.intern(v)
			sb.outCnt[pu]++
			if sb.directed {
				sb.inCnt[pv]++
			} else {
				sb.outCnt[pv]++
			}
		}
		sb.mPass1.Inc()
		if sink != nil {
			sink.spill(u, v)
		}
		return
	}

	var iu, iv VID
	if sb.dense {
		if u < 0 || u >= sb.n || v < 0 || v >= sb.n {
			sb.setErr(fmt.Errorf("%w: edge (%d,%d) with %d dense vertices", ErrStreamRange, u, v, sb.n))
			return
		}
		iu, iv = VID(u), VID(v)
	} else {
		var ok bool
		if iu, ok = sb.index[u]; !ok {
			sb.setErr(fmt.Errorf("%w: vertex %d appears only in pass 2", ErrStreamMismatch, u))
			return
		}
		if iv, ok = sb.index[v]; !ok {
			sb.setErr(fmt.Errorf("%w: vertex %d appears only in pass 2", ErrStreamMismatch, v))
			return
		}
	}
	sb.place(iu, iv)
	sb.mPass2.Inc()
}

// place writes one edge into the CSR rows reserved by pass 1. Cursors
// advance atomically so concurrent producers fill disjoint slots; rows
// are sorted at Finish, so placement order never reaches the Graph.
func (sb *StreamBuilder) place(iu, iv VID) {
	pos := atomic.AddInt64(&sb.outNext[iu], 1) - 1
	if pos >= sb.outOff[iu+1] {
		sb.setErr(fmt.Errorf("%w: vertex %d receives more edges than counted", ErrStreamMismatch, sb.externalOf(iu)))
		return
	}
	sb.outAdj[pos] = iv
	if sb.directed {
		pos = atomic.AddInt64(&sb.inNext[iv], 1) - 1
		if pos >= sb.inOff[iv+1] {
			sb.setErr(fmt.Errorf("%w: vertex %d receives more in-edges than counted", ErrStreamMismatch, sb.externalOf(iv)))
			return
		}
		sb.inAdj[pos] = iu
		return
	}
	pos = atomic.AddInt64(&sb.outNext[iv], 1) - 1
	if pos >= sb.outOff[iv+1] {
		sb.setErr(fmt.Errorf("%w: vertex %d receives more edges than counted", ErrStreamMismatch, sb.externalOf(iv)))
		return
	}
	sb.outAdj[pos] = iu
}

// externalOf maps a dense index back to its external ID for error text.
func (sb *StreamBuilder) externalOf(v VID) int64 {
	if sb.dense || int(v) >= len(sb.ids) {
		return int64(v)
	}
	return sb.ids[v]
}

// intern resolves an external ID to its provisional index (pass 1 only).
func (sb *StreamBuilder) intern(id int64) VID {
	if p, ok := sb.index[id]; ok {
		return p
	}
	p := VID(len(sb.ids))
	sb.index[id] = p
	sb.ids = append(sb.ids, id)
	sb.outCnt = append(sb.outCnt, 0)
	if sb.directed {
		sb.inCnt = append(sb.inCnt, 0)
	}
	sb.n = int64(len(sb.ids))
	return p
}

// Rewind ends the counting pass and prepares the fill pass: the caller
// must then stream the identical edge multiset (any order) and Finish.
// In spill mode Rewind is invalid — Finish replays the spill itself.
func (sb *StreamBuilder) Rewind() error {
	if sb.spillDir != "" {
		return fmt.Errorf("%w: Rewind in spill mode (Finish replays the spill)", ErrStreamPass)
	}
	if sb.pass != 1 {
		return fmt.Errorf("%w: Rewind outside pass 1", ErrStreamPass)
	}
	if err := sb.takeErr(); err != nil {
		return err
	}
	sb.finalizeCounts()
	sb.pass = 2
	return nil
}

// finalizeCounts turns the pass-1 degree counts into CSR offsets, fill
// cursors and adjacency storage. Sparse mode first re-ranks vertices
// into ascending external-ID order, matching Builder's interning.
func (sb *StreamBuilder) finalizeCounts() {
	n := int(sb.n)
	if !sb.dense && n > 0 {
		order := make([]int32, n)
		for i := range order {
			order[i] = int32(i)
		}
		sort.Slice(order, func(i, j int) bool { return sb.ids[order[i]] < sb.ids[order[j]] })
		sortedIDs := make([]int64, n)
		outCnt := make([]int64, n)
		var inCnt []int64
		if sb.directed {
			inCnt = make([]int64, n)
		}
		for rank, prov := range order {
			sortedIDs[rank] = sb.ids[prov]
			outCnt[rank] = sb.outCnt[prov]
			if sb.directed {
				inCnt[rank] = sb.inCnt[prov]
			}
		}
		sb.ids, sb.outCnt, sb.inCnt = sortedIDs, outCnt, inCnt
		for rank, id := range sortedIDs {
			sb.index[id] = VID(rank)
		}
	}

	sb.outOff = prefixSum(sb.outCnt)
	sb.outNext = startCursors(sb.outOff)
	sb.outAdj = make([]VID, sb.outOff[n])
	sb.outCnt = nil
	if sb.directed {
		sb.inOff = prefixSum(sb.inCnt)
		sb.inNext = startCursors(sb.inOff)
		sb.inAdj = make([]VID, sb.inOff[n])
		sb.inCnt = nil
	}

	peak := int64(8*(len(sb.outOff)+len(sb.outNext)+len(sb.inOff)+len(sb.inNext))) +
		int64(4*(len(sb.outAdj)+len(sb.inAdj))) + int64(8*len(sb.ids))
	sb.gPeak.Set(peak)
}

// prefixSum turns per-vertex counts into n+1 CSR offsets.
func prefixSum(counts []int64) []int64 {
	off := make([]int64, len(counts)+1)
	for i, c := range counts {
		off[i+1] = off[i] + c
	}
	return off
}

// startCursors copies each row's start offset as its fill cursor.
func startCursors(off []int64) []int64 {
	next := make([]int64, len(off)-1)
	copy(next, off[:len(off)-1])
	return next
}

// Finish completes the build: in spill mode it first replays the spilled
// stream as pass 2, then sorts and deduplicates every CSR row in
// parallel, compacts the adjacency, and assembles the Graph. Spill files
// are always removed. Matching Builder, an empty vertex set returns
// ErrEmptyGraph.
func (sb *StreamBuilder) Finish() (*Graph, error) {
	defer sb.cleanup()
	if err := sb.closeSinks(); err != nil {
		sb.setErr(err)
	}
	if sb.pass == 1 {
		sb.finalizeCounts()
		sb.pass = 2
		switch {
		case len(sb.spills) > 0:
			sb.replaySpills()
		case sb.totalCounted() != 0:
			return nil, fmt.Errorf("%w: Finish before the pass-2 replay (call Rewind and re-stream)", ErrStreamPass)
		}
	}
	if err := sb.takeErr(); err != nil {
		return nil, err
	}
	sb.gSpill.Set(sb.spillBytes.Load())

	n := int(sb.n)
	if n == 0 {
		return nil, ErrEmptyGraph
	}
	for v := 0; v < n; v++ {
		if sb.outNext[v] != sb.outOff[v+1] {
			return nil, fmt.Errorf("%w: vertex %d received %d of %d counted edges",
				ErrStreamMismatch, sb.externalOf(VID(v)), sb.outNext[v]-sb.outOff[v], sb.outOff[v+1]-sb.outOff[v])
		}
		if sb.directed && sb.inNext[v] != sb.inOff[v+1] {
			return nil, fmt.Errorf("%w: vertex %d received %d of %d counted in-edges",
				ErrStreamMismatch, sb.externalOf(VID(v)), sb.inNext[v]-sb.inOff[v], sb.inOff[v+1]-sb.inOff[v])
		}
	}

	sb.outOff, sb.outAdj = sortDedupCompact(sb.outOff, sb.outAdj, sb.outNext, sb.workers)
	if sb.directed {
		sb.inOff, sb.inAdj = sortDedupCompact(sb.inOff, sb.inAdj, sb.inNext, sb.workers)
	}

	var m int64
	if sb.directed {
		m = int64(len(sb.outAdj))
		if m != int64(len(sb.inAdj)) {
			return nil, fmt.Errorf("%w: out/in arc counts diverge after dedup (%d vs %d)",
				ErrStreamMismatch, m, len(sb.inAdj))
		}
	} else {
		m = int64(len(sb.outAdj)) / 2
	}

	ids := sb.ids
	if sb.dense {
		ids = make([]int64, n)
		for i := range ids {
			ids[i] = int64(i)
		}
	}
	g := &Graph{
		directed: sb.directed,
		ids:      ids,
		index:    sb.index, // nil in dense mode: Lookup falls back to search
		outOff:   sb.outOff,
		outAdj:   sb.outAdj,
		m:        m,
	}
	if sb.directed {
		g.inOff, g.inAdj = sb.inOff, sb.inAdj
	} else {
		g.inOff, g.inAdj = g.outOff, g.outAdj
	}
	return g, nil
}

// totalCounted returns the pass-1 edge-slot total (valid after
// finalizeCounts).
func (sb *StreamBuilder) totalCounted() int64 {
	if len(sb.outOff) == 0 {
		return 0
	}
	return sb.outOff[len(sb.outOff)-1]
}

// sortDedupCompact sorts every CSR row, removes duplicate entries, and
// compacts the adjacency left so rows stay contiguous. rowLen is reused
// as scratch for the deduplicated row lengths. Sorting and deduping are
// embarrassingly parallel; the in-place compaction must run left to
// right in one goroutine because a later row's destination can overlap
// an earlier row's still-unread source (copy's memmove semantics make a
// row's overlap with itself safe). It is a straight memory move, so
// serializing it is cheap next to the sorts.
func sortDedupCompact(off []int64, adj []VID, rowLen []int64, workers int) ([]int64, []VID) {
	n := len(off) - 1
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	parallelRows(n, workers, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			row := adj[off[v]:off[v+1]]
			slices.Sort(row)
			rowLen[v] = int64(dedupRow(row))
		}
	})

	newOff := make([]int64, n+1)
	for v := 0; v < n; v++ {
		newOff[v+1] = newOff[v] + rowLen[v]
	}
	for v := 0; v < n; v++ {
		if newOff[v] != off[v] {
			copy(adj[newOff[v]:newOff[v+1]], adj[off[v]:off[v]+rowLen[v]])
		}
	}
	return newOff, adj[:newOff[n]]
}

// dedupRow removes adjacent duplicates from a sorted row in place and
// returns the deduplicated length.
func dedupRow(row []VID) int {
	if len(row) == 0 {
		return 0
	}
	w := 1
	for i := 1; i < len(row); i++ {
		if row[i] != row[w-1] {
			row[w] = row[i]
			w++
		}
	}
	return w
}

// parallelRows fans fn out over contiguous row ranges.
func parallelRows(n, workers int, fn func(lo, hi int)) {
	if workers <= 1 || n < 2 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// EdgeSink is a per-producer handle for spill-mode streaming: each
// concurrent producer holds its own sink so spill writes stay buffered
// and unsynchronized. Close flushes the sink; the StreamBuilder replays
// and deletes the files during Finish.
type EdgeSink struct {
	sb      *StreamBuilder
	f       *os.File
	bw      *bufio.Writer
	written int64
	scratch [16]byte
}

// NewSink registers a new producer sink. In replay mode (no SpillDir)
// the sink simply forwards to AddEdge.
func (sb *StreamBuilder) NewSink() (*EdgeSink, error) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.newSinkLocked()
}

func (sb *StreamBuilder) newSinkLocked() (*EdgeSink, error) {
	s := &EdgeSink{sb: sb}
	if sb.spillDir != "" && sb.pass == 1 {
		f, err := os.CreateTemp(sb.spillDir, "gpc-edges-*.spill")
		if err != nil {
			return nil, fmt.Errorf("graph: create spill file: %w", err)
		}
		s.f = f
		s.bw = bufio.NewWriterSize(f, 1<<16)
		sb.spills = append(sb.spills, f.Name())
	}
	sb.sinks = append(sb.sinks, s)
	return s, nil
}

// AddEdge streams one edge through this sink.
func (s *EdgeSink) AddEdge(u, v int64) {
	s.sb.addEdge(u, v, s)
}

// spill appends one validated edge to the sink's spill file.
func (s *EdgeSink) spill(u, v int64) {
	if s.bw == nil {
		return
	}
	rec := s.scratch[:8]
	if s.sb.spillWide {
		rec = s.scratch[:16]
		binary.LittleEndian.PutUint64(rec[0:8], uint64(u))
		binary.LittleEndian.PutUint64(rec[8:16], uint64(v))
	} else {
		binary.LittleEndian.PutUint32(rec[0:4], uint32(u))
		binary.LittleEndian.PutUint32(rec[4:8], uint32(v))
	}
	if _, err := s.bw.Write(rec); err != nil {
		s.sb.setErr(fmt.Errorf("graph: spill write: %w", err))
		return
	}
	s.written += int64(len(rec))
}

// Close flushes and closes the sink's spill file. Safe to call more than
// once; the builder closes any still-open sinks during Finish.
func (s *EdgeSink) Close() error {
	if s.f == nil {
		return nil
	}
	var err error
	if ferr := s.bw.Flush(); ferr != nil {
		err = fmt.Errorf("graph: spill flush: %w", ferr)
	}
	if cerr := s.f.Close(); cerr != nil && err == nil {
		err = fmt.Errorf("graph: spill close: %w", cerr)
	}
	s.f, s.bw = nil, nil
	s.sb.spillBytes.Add(s.written)
	s.written = 0
	return err
}

// closeSinks flushes every registered sink, returning the first error.
func (sb *StreamBuilder) closeSinks() error {
	sb.mu.Lock()
	sinks := sb.sinks
	sb.sinks = nil
	sb.defaultSink = nil
	sb.mu.Unlock()
	var first error
	for _, s := range sinks {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// replaySpills streams every spill file back through the pass-2 fill,
// one worker per file up to the configured bound.
func (sb *StreamBuilder) replaySpills() {
	workers := sb.workers
	if workers > len(sb.spills) {
		workers = len(sb.spills)
	}
	if workers <= 1 {
		for _, path := range sb.spills {
			sb.replayOne(path)
		}
		return
	}
	paths := make(chan string)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for path := range paths {
				sb.replayOne(path)
			}
		}()
	}
	for _, path := range sb.spills {
		paths <- path
	}
	close(paths)
	wg.Wait()
}

// replayOne feeds one spill file's edges into pass 2.
func (sb *StreamBuilder) replayOne(path string) {
	f, err := os.Open(path)
	if err != nil {
		sb.setErr(fmt.Errorf("graph: reopen spill: %w", err))
		return
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	recSize := 8
	if sb.spillWide {
		recSize = 16
	}
	var rec [16]byte
	for {
		if _, err := io.ReadFull(br, rec[:recSize]); err != nil {
			if err != io.EOF {
				sb.setErr(fmt.Errorf("graph: spill read: %w", err))
			}
			return
		}
		var u, v int64
		if sb.spillWide {
			u = int64(binary.LittleEndian.Uint64(rec[0:8]))
			v = int64(binary.LittleEndian.Uint64(rec[8:16]))
		} else {
			u = int64(binary.LittleEndian.Uint32(rec[0:4]))
			v = int64(binary.LittleEndian.Uint32(rec[4:8]))
		}
		sb.addEdge(u, v, nil)
	}
}

// cleanup removes every spill file.
func (sb *StreamBuilder) cleanup() {
	for _, path := range sb.spills {
		os.Remove(path)
	}
	sb.spills = nil
}
