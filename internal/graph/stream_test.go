package graph

import (
	"bytes"
	"errors"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"gpluscircles/internal/obs"
)

// binaryBytes serializes a graph for bit-identity comparisons; the
// binary format excludes the interning map, so dense (index-free) and
// map-backed graphs with the same structure compare equal.
func binaryBytes(t *testing.T, g *Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	return buf.Bytes()
}

// streamFromPairs builds a graph from the pair list via StreamBuilder,
// using the replay protocol (no SpillDir) or the spill protocol.
func streamFromPairs(t *testing.T, directed bool, pairs [][2]int64, opts StreamOptions) (*Graph, error) {
	t.Helper()
	sb, err := NewStreamBuilder(directed, opts)
	if err != nil {
		t.Fatalf("NewStreamBuilder: %v", err)
	}
	for _, p := range pairs {
		sb.AddEdge(p[0], p[1])
	}
	if opts.SpillDir == "" {
		if err := sb.Rewind(); err != nil {
			return nil, err
		}
		for _, p := range pairs {
			sb.AddEdge(p[0], p[1])
		}
	}
	return sb.Finish()
}

// randomPairs draws edge soup over [0, n): duplicates, self-loops and
// unordered endpoints all occur.
func randomPairs(rng *rand.Rand, n, count int) [][2]int64 {
	pairs := make([][2]int64, count)
	for i := range pairs {
		pairs[i] = [2]int64{rng.Int63n(int64(n)), rng.Int63n(int64(n))}
	}
	return pairs
}

func TestStreamBuilderMatchesBuilderDense(t *testing.T) {
	for _, directed := range []bool{false, true} {
		rng := rand.New(rand.NewSource(42))
		for trial := 0; trial < 20; trial++ {
			n := 2 + rng.Intn(40)
			pairs := randomPairs(rng, n, rng.Intn(200))

			legacy := NewBuilder(directed)
			for v := 0; v < n; v++ {
				legacy.AddVertex(int64(v))
			}
			for _, p := range pairs {
				legacy.AddEdge(p[0], p[1])
			}
			want, err := legacy.Build()
			if err != nil {
				t.Fatalf("legacy build: %v", err)
			}

			got, err := streamFromPairs(t, directed, pairs, StreamOptions{DenseVertices: int64(n)})
			if err != nil {
				t.Fatalf("stream build (directed=%v trial=%d): %v", directed, trial, err)
			}
			if !bytes.Equal(binaryBytes(t, got), binaryBytes(t, want)) {
				t.Fatalf("directed=%v trial=%d: stream CSR differs from legacy:\n got %s\nwant %s",
					directed, trial, edgeFingerprint(got), edgeFingerprint(want))
			}
		}
	}
}

func TestStreamBuilderMatchesBuilderSparse(t *testing.T) {
	// Arbitrary external IDs, including negatives and wide gaps, interned
	// in ascending order exactly like Builder.
	pairs := [][2]int64{
		{100, -7}, {-7, 100}, {5, 5}, {1 << 40, 100}, {3, 1 << 40},
		{-7, 3}, {100, -7}, {3, -7},
	}
	for _, directed := range []bool{false, true} {
		legacy := NewBuilder(directed)
		legacy.AddVertex(999) // isolated vertex
		for _, p := range pairs {
			legacy.AddEdge(p[0], p[1])
		}
		want, err := legacy.Build()
		if err != nil {
			t.Fatalf("legacy build: %v", err)
		}

		sb, err := NewStreamBuilder(directed, StreamOptions{})
		if err != nil {
			t.Fatalf("NewStreamBuilder: %v", err)
		}
		sb.AddVertex(999)
		for _, p := range pairs {
			sb.AddEdge(p[0], p[1])
		}
		if err := sb.Rewind(); err != nil {
			t.Fatalf("Rewind: %v", err)
		}
		// Pass 2 may replay the multiset in any order.
		for i := len(pairs) - 1; i >= 0; i-- {
			sb.AddEdge(pairs[i][0], pairs[i][1])
		}
		got, err := sb.Finish()
		if err != nil {
			t.Fatalf("Finish: %v", err)
		}
		if !bytes.Equal(binaryBytes(t, got), binaryBytes(t, want)) {
			t.Fatalf("directed=%v: sparse stream differs:\n got %s\nwant %s",
				directed, edgeFingerprint(got), edgeFingerprint(want))
		}
		// Sparse graphs keep the interning map; spot-check it.
		if v, ok := got.Lookup(1 << 40); !ok || got.ExternalID(v) != 1<<40 {
			t.Fatalf("Lookup(1<<40) = (%d,%v)", v, ok)
		}
	}
}

func TestStreamBuilderSpill(t *testing.T) {
	for _, directed := range []bool{false, true} {
		for _, dense := range []bool{false, true} {
			rng := rand.New(rand.NewSource(7))
			n := 30
			pairs := randomPairs(rng, n, 300)

			want, err := streamFromPairs(t, directed, pairs, StreamOptions{DenseVertices: int64(n)})
			if err != nil {
				t.Fatalf("replay build: %v", err)
			}

			dir := t.TempDir()
			opts := StreamOptions{SpillDir: dir}
			if dense {
				opts.DenseVertices = int64(n)
			}
			sb, err := NewStreamBuilder(directed, opts)
			if err != nil {
				t.Fatalf("NewStreamBuilder: %v", err)
			}
			if !dense {
				for v := 0; v < n; v++ {
					sb.AddVertex(int64(v))
				}
			}
			spill := obs.NewRecorder().Gauge("spill")
			sb.Instrument(nil, nil, spill, nil)
			for _, p := range pairs {
				sb.AddEdge(p[0], p[1])
			}
			got, err := sb.Finish()
			if err != nil {
				t.Fatalf("spill build (directed=%v dense=%v): %v", directed, dense, err)
			}
			if !bytes.Equal(binaryBytes(t, got), binaryBytes(t, want)) {
				t.Fatalf("directed=%v dense=%v: spill build differs from replay build", directed, dense)
			}
			wantBytes := int64(len(pairs)-countSelfLoops(pairs)) * 16
			if dense {
				wantBytes /= 2
			}
			if spill.Value() != wantBytes {
				t.Fatalf("spill gauge = %d, want %d", spill.Value(), wantBytes)
			}
			// Spill files are cleaned up by Finish.
			left, err := filepath.Glob(filepath.Join(dir, "gpc-edges-*"))
			if err != nil {
				t.Fatal(err)
			}
			if len(left) != 0 {
				t.Fatalf("spill files left behind: %v", left)
			}
		}
	}
}

func countSelfLoops(pairs [][2]int64) int {
	c := 0
	for _, p := range pairs {
		if p[0] == p[1] {
			c++
		}
	}
	return c
}

// TestStreamBuilderConcurrent exercises the atomic count/fill paths (and
// per-producer spill sinks) from multiple goroutines; run under -race.
func TestStreamBuilderConcurrent(t *testing.T) {
	const n, producers, perProducer = 64, 4, 500
	// Deterministic per-producer edge sets.
	edgeSets := make([][][2]int64, producers)
	legacy := NewBuilder(false)
	for v := 0; v < n; v++ {
		legacy.AddVertex(int64(v))
	}
	for p := range edgeSets {
		rng := rand.New(rand.NewSource(int64(100 + p)))
		edgeSets[p] = randomPairs(rng, n, perProducer)
		for _, e := range edgeSets[p] {
			legacy.AddEdge(e[0], e[1])
		}
	}
	want, err := legacy.Build()
	if err != nil {
		t.Fatalf("legacy build: %v", err)
	}

	t.Run("replay", func(t *testing.T) {
		sb, err := NewStreamBuilder(false, StreamOptions{DenseVertices: n, Workers: producers})
		if err != nil {
			t.Fatal(err)
		}
		stream := func() {
			var wg sync.WaitGroup
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					for _, e := range edgeSets[p] {
						sb.AddEdge(e[0], e[1])
					}
				}(p)
			}
			wg.Wait()
		}
		stream()
		if err := sb.Rewind(); err != nil {
			t.Fatal(err)
		}
		stream()
		got, err := sb.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(binaryBytes(t, got), binaryBytes(t, want)) {
			t.Fatal("concurrent replay build differs from legacy")
		}
	})

	t.Run("spill", func(t *testing.T) {
		sb, err := NewStreamBuilder(false, StreamOptions{
			DenseVertices: n, Workers: producers, SpillDir: t.TempDir(),
		})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for p := 0; p < producers; p++ {
			sink, err := sb.NewSink()
			if err != nil {
				t.Fatal(err)
			}
			wg.Add(1)
			go func(p int, sink *EdgeSink) {
				defer wg.Done()
				for _, e := range edgeSets[p] {
					sink.AddEdge(e[0], e[1])
				}
				if err := sink.Close(); err != nil {
					t.Error(err)
				}
			}(p, sink)
		}
		wg.Wait()
		got, err := sb.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(binaryBytes(t, got), binaryBytes(t, want)) {
			t.Fatal("concurrent spill build differs from legacy")
		}
	})
}

func TestStreamBuilderErrors(t *testing.T) {
	t.Run("dense range", func(t *testing.T) {
		sb, _ := NewStreamBuilder(false, StreamOptions{DenseVertices: 4})
		sb.AddEdge(1, 9)
		if err := sb.Rewind(); !errors.Is(err, ErrStreamRange) {
			t.Fatalf("got %v, want ErrStreamRange", err)
		}
	})
	t.Run("oversized dense universe", func(t *testing.T) {
		if _, err := NewStreamBuilder(false, StreamOptions{DenseVertices: 1 << 33}); !errors.Is(err, ErrStreamRange) {
			t.Fatalf("got %v, want ErrStreamRange", err)
		}
	})
	t.Run("finish before pass 2", func(t *testing.T) {
		sb, _ := NewStreamBuilder(false, StreamOptions{DenseVertices: 4})
		sb.AddEdge(0, 1)
		if _, err := sb.Finish(); !errors.Is(err, ErrStreamPass) {
			t.Fatalf("got %v, want ErrStreamPass", err)
		}
	})
	t.Run("rewind in spill mode", func(t *testing.T) {
		sb, _ := NewStreamBuilder(false, StreamOptions{DenseVertices: 4, SpillDir: t.TempDir()})
		if err := sb.Rewind(); !errors.Is(err, ErrStreamPass) {
			t.Fatalf("got %v, want ErrStreamPass", err)
		}
	})
	t.Run("extra pass-2 edge", func(t *testing.T) {
		sb, _ := NewStreamBuilder(false, StreamOptions{DenseVertices: 4})
		sb.AddEdge(0, 1)
		if err := sb.Rewind(); err != nil {
			t.Fatal(err)
		}
		sb.AddEdge(0, 1)
		sb.AddEdge(0, 2) // never counted
		if _, err := sb.Finish(); !errors.Is(err, ErrStreamMismatch) {
			t.Fatalf("got %v, want ErrStreamMismatch", err)
		}
	})
	t.Run("missing pass-2 edge", func(t *testing.T) {
		sb, _ := NewStreamBuilder(false, StreamOptions{DenseVertices: 4})
		sb.AddEdge(0, 1)
		sb.AddEdge(2, 3)
		if err := sb.Rewind(); err != nil {
			t.Fatal(err)
		}
		sb.AddEdge(0, 1)
		if _, err := sb.Finish(); !errors.Is(err, ErrStreamMismatch) {
			t.Fatalf("got %v, want ErrStreamMismatch", err)
		}
	})
	t.Run("unknown sparse pass-2 vertex", func(t *testing.T) {
		sb, _ := NewStreamBuilder(false, StreamOptions{})
		sb.AddEdge(10, 20)
		if err := sb.Rewind(); err != nil {
			t.Fatal(err)
		}
		sb.AddEdge(10, 30)
		if _, err := sb.Finish(); !errors.Is(err, ErrStreamMismatch) {
			t.Fatalf("got %v, want ErrStreamMismatch", err)
		}
	})
	t.Run("empty", func(t *testing.T) {
		sb, _ := NewStreamBuilder(false, StreamOptions{})
		if _, err := sb.Finish(); !errors.Is(err, ErrEmptyGraph) {
			t.Fatalf("got %v, want ErrEmptyGraph", err)
		}
	})
	t.Run("vertices only", func(t *testing.T) {
		// Edge-free builds may Finish straight from pass 1.
		sb, _ := NewStreamBuilder(false, StreamOptions{DenseVertices: 3})
		g, err := sb.Finish()
		if err != nil {
			t.Fatalf("vertex-only build: %v", err)
		}
		if g.NumVertices() != 3 || g.NumEdges() != 0 {
			t.Fatalf("got n=%d m=%d, want n=3 m=0", g.NumVertices(), g.NumEdges())
		}
	})
}

// TestStreamBuilderLookupFallback covers the nil-index binary-search path
// dense-mode graphs rely on.
func TestStreamBuilderLookupFallback(t *testing.T) {
	g, err := streamFromPairs(t, false, [][2]int64{{0, 1}, {1, 2}}, StreamOptions{DenseVertices: 5})
	if err != nil {
		t.Fatal(err)
	}
	for v := int64(0); v < 5; v++ {
		got, ok := g.Lookup(v)
		if !ok || int64(got) != v {
			t.Fatalf("Lookup(%d) = (%d,%v)", v, got, ok)
		}
	}
	if _, ok := g.Lookup(5); ok {
		t.Fatal("Lookup(5) found a vertex outside the universe")
	}
	if _, err := g.MustLookup(-1); err == nil {
		t.Fatal("MustLookup(-1) succeeded")
	}
}

func TestStreamBuilderInstrument(t *testing.T) {
	rec := obs.NewRecorder()
	sb, err := NewStreamBuilder(false, StreamOptions{DenseVertices: 8})
	if err != nil {
		t.Fatal(err)
	}
	p1 := rec.Counter("pass1")
	p2 := rec.Counter("pass2")
	peak := rec.Gauge("peak")
	sb.Instrument(p1, p2, nil, peak)
	pairs := [][2]int64{{0, 1}, {1, 2}, {2, 2}, {1, 0}}
	if _, err := streamReplay(sb, pairs); err != nil {
		t.Fatal(err)
	}
	// Self-loops never reach the counters.
	if p1.Value() != 3 || p2.Value() != 3 {
		t.Fatalf("pass counters = (%d,%d), want (3,3)", p1.Value(), p2.Value())
	}
	if peak.Value() <= 0 {
		t.Fatalf("peak gauge = %d, want > 0", peak.Value())
	}
}

// streamReplay drives the two-pass replay protocol for a fixed pair list.
func streamReplay(sb *StreamBuilder, pairs [][2]int64) (*Graph, error) {
	for _, p := range pairs {
		sb.AddEdge(p[0], p[1])
	}
	if err := sb.Rewind(); err != nil {
		return nil, err
	}
	for _, p := range pairs {
		sb.AddEdge(p[0], p[1])
	}
	return sb.Finish()
}
