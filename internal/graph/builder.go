package graph

import (
	"errors"
	"sort"
)

// ErrEmptyGraph is returned by Build when no vertices were added.
var ErrEmptyGraph = errors.New("graph: build of empty graph")

// Builder accumulates vertices and edges identified by external int64 IDs
// and produces an immutable Graph. Duplicate edges and self-loops are
// dropped at Build time. The zero Builder is not valid; use NewBuilder.
type Builder struct {
	directed bool
	vertices map[int64]struct{}
	edges    []rawEdge
}

type rawEdge struct {
	u, v int64
}

// NewBuilder returns a Builder for a directed or undirected graph.
func NewBuilder(directed bool) *Builder {
	return &Builder{
		directed: directed,
		vertices: make(map[int64]struct{}),
	}
}

// Directed reports the edge type the Builder was created with.
func (b *Builder) Directed() bool { return b.directed }

// AddVertex registers an isolated vertex. Vertices referenced by AddEdge
// are registered implicitly; AddVertex is only needed for degree-0
// vertices.
func (b *Builder) AddVertex(id int64) {
	b.vertices[id] = struct{}{}
}

// AddEdge registers the arc (u,v) (directed) or edge {u,v} (undirected).
// Self-loops are ignored. Duplicates are deduplicated at Build time.
func (b *Builder) AddEdge(u, v int64) {
	if u == v {
		return
	}
	b.vertices[u] = struct{}{}
	b.vertices[v] = struct{}{}
	if !b.directed && u > v {
		u, v = v, u // normalize undirected edges for dedup
	}
	b.edges = append(b.edges, rawEdge{u: u, v: v})
}

// NumPendingEdges returns the number of edges added so far, before
// deduplication.
func (b *Builder) NumPendingEdges() int { return len(b.edges) }

// NumPendingVertices returns the number of distinct vertices added so far.
func (b *Builder) NumPendingVertices() int { return len(b.vertices) }

// Build constructs the immutable Graph. External IDs are assigned dense
// indices in ascending ID order, so construction is deterministic for a
// given edge multiset regardless of insertion order.
func (b *Builder) Build() (*Graph, error) {
	if len(b.vertices) == 0 {
		return nil, ErrEmptyGraph
	}

	ids := make([]int64, 0, len(b.vertices))
	for id := range b.vertices {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	index := make(map[int64]VID, len(ids))
	for i, id := range ids {
		index[id] = VID(i)
	}

	// Translate, sort and deduplicate edges on dense indices.
	dense := make([]Edge, len(b.edges))
	for i, e := range b.edges {
		dense[i] = Edge{From: index[e.u], To: index[e.v]}
	}
	sort.Slice(dense, func(i, j int) bool {
		if dense[i].From != dense[j].From {
			return dense[i].From < dense[j].From
		}
		return dense[i].To < dense[j].To
	})
	dense = dedupEdges(dense)

	g := &Graph{
		directed: b.directed,
		ids:      ids,
		index:    index,
		m:        int64(len(dense)),
	}
	n := len(ids)

	if b.directed {
		g.outOff, g.outAdj = buildCSR(n, dense, false)
		g.inOff, g.inAdj = buildCSR(n, dense, true)
		return g, nil
	}

	// Undirected: store each edge in both rows; adjacency is symmetric so
	// the reverse CSR aliases the forward one.
	sym := make([]Edge, 0, 2*len(dense))
	for _, e := range dense {
		sym = append(sym, e, Edge{From: e.To, To: e.From})
	}
	sort.Slice(sym, func(i, j int) bool {
		if sym[i].From != sym[j].From {
			return sym[i].From < sym[j].From
		}
		return sym[i].To < sym[j].To
	})
	g.outOff, g.outAdj = buildCSR(n, sym, false)
	g.inOff, g.inAdj = g.outOff, g.outAdj
	return g, nil
}

// dedupEdges removes adjacent duplicates from a sorted edge slice in place.
func dedupEdges(es []Edge) []Edge {
	if len(es) == 0 {
		return es
	}
	w := 1
	for i := 1; i < len(es); i++ {
		if es[i] != es[w-1] {
			es[w] = es[i]
			w++
		}
	}
	return es[:w]
}

// buildCSR lays out the (already sorted by From, then To) edges as CSR
// rows. When reverse is true the roles of From and To are swapped and the
// input is re-sorted accordingly.
func buildCSR(n int, edges []Edge, reverse bool) ([]int64, []VID) {
	src := edges
	if reverse {
		src = make([]Edge, len(edges))
		for i, e := range edges {
			src[i] = Edge{From: e.To, To: e.From}
		}
		sort.Slice(src, func(i, j int) bool {
			if src[i].From != src[j].From {
				return src[i].From < src[j].From
			}
			return src[i].To < src[j].To
		})
	}
	off := make([]int64, n+1)
	for _, e := range src {
		off[e.From+1]++
	}
	for i := 1; i <= n; i++ {
		off[i] += off[i-1]
	}
	adj := make([]VID, len(src))
	for i, e := range src {
		adj[i] = e.To
	}
	return off, adj
}

// FromEdges is a convenience constructor building a graph directly from a
// dense edge list of external IDs.
func FromEdges(directed bool, edges [][2]int64) (*Graph, error) {
	b := NewBuilder(directed)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}
