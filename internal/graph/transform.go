package graph

import "fmt"

// Undirected projects a directed graph onto an undirected one: every arc
// (u,v) becomes the edge {u,v}, and a bidirectional pair (u,v),(v,u)
// collapses into a single edge. This is the projection used by the paper's
// directed-vs-undirected deviation experiment (Section IV-B). Vertex IDs
// are preserved. Projecting an already-undirected graph returns a copy.
func Undirected(g *Graph) (*Graph, error) {
	b := NewBuilder(false)
	for v := 0; v < g.NumVertices(); v++ {
		b.AddVertex(g.ExternalID(VID(v)))
	}
	g.Edges(func(e Edge) bool {
		b.AddEdge(g.ExternalID(e.From), g.ExternalID(e.To))
		return true
	})
	u, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("undirected projection: %w", err)
	}
	return u, nil
}

// ReciprocalEdgeCount returns, for a directed graph, the number of arcs
// (u,v) whose reverse arc (v,u) also exists. Reciprocity = result / m.
func ReciprocalEdgeCount(g *Graph) int64 {
	if !g.directed {
		return 2 * g.m
	}
	var count int64
	g.Edges(func(e Edge) bool {
		if g.HasEdge(e.To, e.From) {
			count++
		}
		return true
	})
	return count
}

// Subgraph induces the subgraph on the given dense vertex indices,
// preserving external IDs. Edges with an endpoint outside the set are
// dropped. The result may contain isolated vertices.
func Subgraph(g *Graph, members []VID) (*Graph, error) {
	s := SetOf(g, members)
	b := NewBuilder(g.directed)
	for _, v := range s.Members() {
		b.AddVertex(g.ExternalID(v))
	}
	for _, u := range s.Members() {
		for _, v := range g.OutNeighbors(u) {
			if !s.Contains(v) {
				continue
			}
			if !g.directed && v < u {
				continue
			}
			b.AddEdge(g.ExternalID(u), g.ExternalID(v))
		}
	}
	sub, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("induced subgraph: %w", err)
	}
	return sub, nil
}

// Relabel returns a copy of g whose external IDs are replaced by the dense
// indices 0..n-1. Useful before writing compact edge lists.
func Relabel(g *Graph) (*Graph, error) {
	b := NewBuilder(g.directed)
	for v := 0; v < g.NumVertices(); v++ {
		b.AddVertex(int64(v))
	}
	g.Edges(func(e Edge) bool {
		b.AddEdge(int64(e.From), int64(e.To))
		return true
	})
	r, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("relabel: %w", err)
	}
	return r, nil
}
