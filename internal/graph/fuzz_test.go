package graph

import (
	"bytes"
	"fmt"
	"testing"
)

// decodePairs turns fuzz bytes into (u,v) pairs over a small ID space.
// Two bytes per pair keeps the space dense enough that duplicates,
// self-loops and unordered edges all occur naturally.
func decodePairs(data []byte, mod int) [][2]int64 {
	pairs := make([][2]int64, 0, len(data)/2)
	for i := 0; i+1 < len(data); i += 2 {
		pairs = append(pairs, [2]int64{int64(data[i] % byte(mod)), int64(data[i+1] % byte(mod))})
	}
	return pairs
}

// edgeFingerprint renders a graph's full structure (IDs + adjacency) for
// equality checks.
func edgeFingerprint(g *Graph) string {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "directed=%v n=%d m=%d ids=%v\n", g.Directed(), g.NumVertices(), g.NumEdges(), g.ExternalIDs())
	for v := 0; v < g.NumVertices(); v++ {
		fmt.Fprintf(&buf, "%d:%v;%v\n", v, g.OutNeighbors(VID(v)), g.InNeighbors(VID(v)))
	}
	return buf.String()
}

// FuzzBuilder feeds the Builder arbitrary edge soup — duplicates,
// self-loops, unordered endpoints — and checks the built graph upholds
// every structural invariant, then round-trips it through an
// identity-rewired Overlay and Materialize back to an equal graph.
func FuzzBuilder(f *testing.F) {
	f.Add([]byte{1, 2, 2, 3, 3, 1}, false)
	f.Add([]byte{0, 0, 1, 1, 2, 2}, true)       // all self-loops
	f.Add([]byte{1, 2, 2, 1, 1, 2, 2, 1}, true) // duplicates both ways
	f.Add([]byte{7, 3, 3, 7, 5, 5, 0, 7}, false)
	f.Fuzz(func(t *testing.T, data []byte, directed bool) {
		pairs := decodePairs(data, 16)
		g, err := FromEdges(directed, pairs)
		if err != nil {
			// Only the empty graph is rejected.
			if len(pairs) > 0 {
				nonLoop := false
				for _, p := range pairs {
					if p[0] != p[1] {
						nonLoop = true
					}
				}
				if nonLoop {
					t.Fatalf("build rejected non-empty input: %v", err)
				}
			}
			return
		}

		// Structural invariants: no self-loops, rows sorted and
		// duplicate-free, degree sum consistent with m.
		var degSum int64
		for v := 0; v < g.NumVertices(); v++ {
			row := g.OutNeighbors(VID(v))
			for i, w := range row {
				if w == VID(v) {
					t.Fatalf("self-loop survived at vertex %d", v)
				}
				if i > 0 && row[i-1] >= w {
					t.Fatalf("row %d not strictly ascending: %v", v, row)
				}
			}
			degSum += int64(g.Degree(VID(v)))
		}
		if degSum != 2*g.NumEdges() {
			t.Fatalf("degree sum %d != 2m %d", degSum, 2*g.NumEdges())
		}

		// The streaming two-pass builder must reproduce Builder's output
		// bit-for-bit on the same edge soup (sparse interning mode).
		sb, err := NewStreamBuilder(directed, StreamOptions{})
		if err != nil {
			t.Fatalf("NewStreamBuilder: %v", err)
		}
		sg, err := streamReplay(sb, pairs)
		if err != nil {
			t.Fatalf("stream build rejected input the Builder accepted: %v", err)
		}
		if got, want := edgeFingerprint(sg), edgeFingerprint(g); got != want {
			t.Fatalf("stream builder diverged from Builder:\n got %s\nwant %s", got, want)
		}

		// Round-trip: identity overlay -> Materialize must reproduce the
		// graph exactly, regardless of how messy the input edges were.
		o := NewOverlay(g)
		back, err := o.Materialize()
		if err != nil {
			t.Fatalf("materialize identity overlay: %v", err)
		}
		if got, want := edgeFingerprint(back), edgeFingerprint(g); got != want {
			t.Fatalf("materialize round-trip diverged:\n got %s\nwant %s", got, want)
		}
	})
}

// FuzzOverlayFillFromEdges drives the exact-degree fill with both valid
// sequences (the parent's own edges, possibly reordered by the fuzz
// input) and arbitrary invalid ones. Valid fills must succeed without
// the degree-exactness errors ever firing; invalid ones must error
// without corrupting the parent or poisoning the overlay for reuse.
func FuzzOverlayFillFromEdges(f *testing.F) {
	f.Add([]byte{1, 2, 2, 3, 3, 4, 4, 1}, []byte{0}, false)
	f.Add([]byte{1, 2, 2, 3, 1, 3}, []byte{2, 1, 0}, true)
	f.Add([]byte{5, 6, 6, 7}, []byte{9, 9, 9, 9}, false)
	f.Fuzz(func(t *testing.T, graphData, fillData []byte, directed bool) {
		g, err := FromEdges(directed, decodePairs(graphData, 12))
		if err != nil {
			return
		}
		before := edgeFingerprint(g)
		o := NewOverlay(g)

		// Valid fill: the parent's own edge list, rotated by the fuzz
		// input — any order must realize the degree sequence exactly.
		valid := g.EdgeList()
		if len(valid) > 0 && len(fillData) > 0 {
			rot := int(fillData[0]) % len(valid)
			valid = append(valid[rot:], valid[:rot]...)
		}
		if err := o.FillFromEdges(valid); err != nil {
			t.Fatalf("valid fill rejected: %v", err)
		}
		for v := 0; v < g.NumVertices(); v++ {
			if got, want := len(o.OutNeighbors(VID(v))), g.OutDegree(VID(v)); got != want {
				t.Fatalf("vertex %d: overlay row length %d != parent out-degree %d", v, got, want)
			}
		}

		// Arbitrary fill: decoded from the fuzz input over the parent's
		// dense vertex space; most sequences violate the degree sequence
		// and must error cleanly.
		n := g.NumVertices()
		arbitrary := make([]Edge, 0, len(fillData)/2)
		for i := 0; i+1 < len(fillData); i += 2 {
			arbitrary = append(arbitrary, Edge{
				From: VID(int(fillData[i]) % n),
				To:   VID(int(fillData[i+1]) % n),
			})
		}
		fillErr := o.FillFromEdges(arbitrary)
		if fillErr == nil {
			// The fill claimed success, so every row must again be
			// exactly full.
			for v := 0; v < n; v++ {
				if got, want := len(o.OutNeighbors(VID(v))), g.OutDegree(VID(v)); got != want {
					t.Fatalf("accepted fill left vertex %d with %d of %d neighbors", v, got, want)
				}
			}
		}

		// Error or not, the parent is untouched and the overlay remains
		// reusable: a Reset restores the identity view.
		if after := edgeFingerprint(g); after != before {
			t.Fatalf("parent corrupted by fill (err=%v):\nbefore %s\nafter %s", fillErr, before, after)
		}
		o.Reset()
		for v := 0; v < n; v++ {
			parentRow := g.OutNeighbors(VID(v))
			overlayRow := o.OutNeighbors(VID(v))
			for i := range parentRow {
				if overlayRow[i] != parentRow[i] {
					t.Fatalf("overlay not reusable after fill error %v: row %d differs", fillErr, v)
				}
			}
		}
	})
}
