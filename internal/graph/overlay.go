package graph

import (
	"fmt"
	"sort"
	"sync"

	"gpluscircles/internal/obs"
)

// View is the read-only adjacency surface the scoring and analysis code
// consumes. Both *Graph and *Overlay satisfy it, so the community scoring
// functions and graph.Cut evaluate null-model samples without ever
// materializing them as full graphs.
//
// Implementations must be safe for concurrent readers and must uphold the
// Graph invariants: neighbor slices are sorted ascending and owned by the
// view (callers must not modify them), and degrees are consistent with
// the slices' lengths.
type View interface {
	Directed() bool
	NumVertices() int
	NumEdges() int64
	Degree(v VID) int
	OutDegree(v VID) int
	InDegree(v VID) int
	OutNeighbors(v VID) []VID
	InNeighbors(v VID) []VID
	HasEdge(u, v VID) bool
	DegreeSequence() []int
}

var (
	_ View = (*Graph)(nil)
	_ View = (*Overlay)(nil)
)

// Overlay is an adjacency-only rewrite of a parent graph: a view with the
// parent's vertex set, interning tables and CSR offsets, but its own
// adjacency storage. It exists for degree-preserving null models, where
// every sample realizes the exact degree sequence of the parent — hence
// the offset arrays, the ids table and the index map are invariant and
// can be shared; only the 2m adjacency entries differ per sample.
//
// Memory model:
//
//   - Shared with the parent (never written): ids, index, outOff, inOff.
//   - Owned by the overlay (rewritten per sample): outAdj and, for
//     directed parents, inAdj. For undirected parents inAdj aliases
//     outAdj, mirroring Graph's layout, so an overlay costs exactly 2m
//     VIDs regardless of directedness.
//
// An Overlay is safe for concurrent readers once filled; filling
// (Reset/FillFromEdges) must not race with readers. Obtain pooled
// overlays from an OverlayArena to make repeated sampling allocation-free
// after warm-up.
type Overlay struct {
	parent *Graph
	outAdj []VID
	inAdj  []VID // aliases outAdj when the parent is undirected

	cursor []int64 // scratch write cursors for FillFromEdges, len n
}

// NewOverlay allocates an overlay of parent initialized to the parent's
// own adjacency (i.e. a view equal to the parent).
func NewOverlay(parent *Graph) *Overlay {
	o := &Overlay{
		parent: parent,
		outAdj: make([]VID, len(parent.outAdj)),
	}
	if parent.directed {
		o.inAdj = make([]VID, len(parent.inAdj))
	} else {
		o.inAdj = o.outAdj
	}
	o.Reset()
	return o
}

// Parent returns the graph whose structure the overlay shares.
func (o *Overlay) Parent() *Graph { return o.parent }

// Reset copies the parent's adjacency back into the overlay.
func (o *Overlay) Reset() {
	copy(o.outAdj, o.parent.outAdj)
	if o.parent.directed {
		copy(o.inAdj, o.parent.inAdj)
	}
}

// Directed reports whether the parent (and hence the overlay) is directed.
func (o *Overlay) Directed() bool { return o.parent.directed }

// NumVertices returns the parent's vertex count.
func (o *Overlay) NumVertices() int { return o.parent.NumVertices() }

// NumEdges returns the parent's edge count; every legal overlay fill
// realizes the same m.
func (o *Overlay) NumEdges() int64 { return o.parent.m }

// ExternalID returns the data-set ID of the dense vertex v.
func (o *Overlay) ExternalID(v VID) int64 { return o.parent.ExternalID(v) }

// OutNeighbors returns the overlay's out-adjacency of v, sorted
// ascending. Callers must not modify the returned slice.
func (o *Overlay) OutNeighbors(v VID) []VID {
	return o.outAdj[o.parent.outOff[v]:o.parent.outOff[v+1]]
}

// InNeighbors returns the overlay's in-adjacency of v, sorted ascending.
// Callers must not modify the returned slice.
func (o *Overlay) InNeighbors(v VID) []VID {
	return o.inAdj[o.parent.inOff[v]:o.parent.inOff[v+1]]
}

// OutDegree equals the parent's out-degree: the offsets are shared.
func (o *Overlay) OutDegree(v VID) int { return o.parent.OutDegree(v) }

// InDegree equals the parent's in-degree.
func (o *Overlay) InDegree(v VID) int { return o.parent.InDegree(v) }

// Degree equals the parent's degree.
func (o *Overlay) Degree(v VID) int { return o.parent.Degree(v) }

// DegreeSequence equals the parent's degree sequence.
func (o *Overlay) DegreeSequence() []int { return o.parent.DegreeSequence() }

// HasEdge reports whether the overlay contains the arc (u,v) (directed)
// or edge {u,v} (undirected). Runs in O(log deg(u)).
func (o *Overlay) HasEdge(u, v VID) bool {
	adj := o.OutNeighbors(u)
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= v })
	return i < len(adj) && adj[i] == v
}

// FillFromEdges overwrites the overlay's adjacency with the given edge
// list, which must be simple and realize exactly the parent's per-vertex
// degree sequence (out- and in-degrees for directed parents). Rows are
// re-sorted ascending, preserving the Graph adjacency invariant. The
// edges slice is not retained.
//
// The degree check is exact: an edge list that would overflow any CSR row
// returns an error before corrupting neighboring rows, and underfull rows
// are reported after placement.
func (o *Overlay) FillFromEdges(edges []Edge) error {
	g := o.parent
	n := g.NumVertices()
	if o.cursor == nil {
		o.cursor = make([]int64, n)
	}
	cur := o.cursor

	place := func(adj []VID, off []int64, from, to VID) error {
		if cur[from] >= off[from+1] {
			return fmt.Errorf("graph: overlay fill: vertex %d exceeds its degree %d", from, off[from+1]-off[from])
		}
		adj[cur[from]] = to
		cur[from]++
		return nil
	}
	checkFull := func(off []int64) error {
		for v := 0; v < n; v++ {
			if cur[v] != off[v+1] {
				return fmt.Errorf("graph: overlay fill: vertex %d got %d of %d neighbors", v, cur[v]-off[v], off[v+1]-off[v])
			}
		}
		return nil
	}

	copy(cur, g.outOff[:n])
	if g.directed {
		for _, e := range edges {
			if err := place(o.outAdj, g.outOff, e.From, e.To); err != nil {
				return err
			}
		}
		if err := checkFull(g.outOff); err != nil {
			return err
		}
		copy(cur, g.inOff[:n])
		for _, e := range edges {
			if err := place(o.inAdj, g.inOff, e.To, e.From); err != nil {
				return err
			}
		}
		if err := checkFull(g.inOff); err != nil {
			return err
		}
		sortRows(o.outAdj, g.outOff, n)
		sortRows(o.inAdj, g.inOff, n)
		return nil
	}

	// Undirected: each edge lands in both endpoint rows of the single
	// shared adjacency array.
	for _, e := range edges {
		if err := place(o.outAdj, g.outOff, e.From, e.To); err != nil {
			return err
		}
		if err := place(o.outAdj, g.outOff, e.To, e.From); err != nil {
			return err
		}
	}
	if err := checkFull(g.outOff); err != nil {
		return err
	}
	sortRows(o.outAdj, g.outOff, n)
	return nil
}

// sortRows restores the ascending-row invariant after a counting fill.
// Rows are short on social graphs, so insertion sort beats the generic
// sort without allocating.
func sortRows(adj []VID, off []int64, n int) {
	for v := 0; v < n; v++ {
		row := adj[off[v]:off[v+1]]
		for i := 1; i < len(row); i++ {
			x := row[i]
			j := i - 1
			for j >= 0 && row[j] > x {
				row[j+1] = row[j]
				j--
			}
			row[j+1] = x
		}
	}
}

// Materialize builds an immutable Graph equal to the overlay's current
// contents, carrying the parent's external IDs. Intended for callers that
// need to hand a sample to APIs requiring a concrete *Graph; the hot
// sampling paths never call it.
func (o *Overlay) Materialize() (*Graph, error) {
	g := o.parent
	b := NewBuilder(g.directed)
	for v := 0; v < g.NumVertices(); v++ {
		b.AddVertex(g.ExternalID(VID(v)))
	}
	n := VID(g.NumVertices())
	for u := VID(0); u < n; u++ {
		for _, v := range o.OutNeighbors(u) {
			if !g.directed && v < u {
				continue
			}
			b.AddEdge(g.ExternalID(u), g.ExternalID(v))
		}
	}
	return b.Build()
}

// OverlayArena pools overlays of a single parent graph so repeated
// null-model sampling reuses adjacency buffers instead of allocating
// fresh ones per sample. Get returns an overlay with unspecified
// adjacency contents (a previous user's sample or the parent's
// adjacency); callers that need a parent copy must Reset it, and callers
// that fully overwrite it (FillFromEdges) can skip the copy.
//
// The arena is safe for concurrent use. Overlays must be returned with
// Put only once their readers are done; a pooled overlay must never be
// read after Put.
type OverlayArena struct {
	parent *Graph
	pool   sync.Pool

	// hits counts Gets served from the pool, misses Gets that had to
	// allocate a fresh overlay. Nil (the default) disables counting;
	// see Instrument.
	hits   *obs.Counter
	misses *obs.Counter
}

// NewOverlayArena creates an arena pooling overlays of parent.
func NewOverlayArena(parent *Graph) *OverlayArena {
	return &OverlayArena{parent: parent}
}

// Instrument wires the arena's hit/miss counters (a pool hit reuses a
// buffer, a miss allocates a fresh 2m-entry overlay). Call it before the
// arena is shared across goroutines — typically right after
// NewOverlayArena — because the handles are plain fields read by Get.
// Either counter may be nil.
func (a *OverlayArena) Instrument(hits, misses *obs.Counter) {
	a.hits = hits
	a.misses = misses
}

// Parent returns the graph whose overlays the arena pools.
func (a *OverlayArena) Parent() *Graph { return a.parent }

// Get returns a pooled (or freshly allocated) overlay of the arena's
// parent. Its adjacency contents are unspecified; see the type comment.
func (a *OverlayArena) Get() *Overlay {
	if v := a.pool.Get(); v != nil {
		a.hits.Inc()
		return v.(*Overlay)
	}
	a.misses.Inc()
	return NewOverlay(a.parent)
}

// Put returns an overlay to the arena. Putting an overlay of a different
// parent is a programming error and panics: mixing parents would hand
// future Get callers adjacency buffers of the wrong shape.
func (a *OverlayArena) Put(o *Overlay) {
	if o == nil {
		return
	}
	if o.parent != a.parent {
		panic("graph: OverlayArena.Put of overlay with a different parent")
	}
	a.pool.Put(o)
}
