package graph

import (
	"math/rand"
	"sync"
	"testing"
)

// TestConcurrentReaders validates the documented guarantee that Graph
// values are safe for concurrent reads: many goroutines traverse the
// same graph simultaneously (run with -race to make this meaningful —
// the full suite does).
func TestConcurrentReaders(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	g, err := FromEdges(true, randomEdges(rng, 60, 600))
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	var wg sync.WaitGroup
	results := make([]int64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			var sum int64
			for round := 0; round < 50; round++ {
				for v := 0; v < g.NumVertices(); v++ {
					sum += int64(g.Degree(VID(v)))
					for _, u := range g.OutNeighbors(VID(v)) {
						if g.HasEdge(VID(v), u) {
							sum++
						}
					}
				}
				g.Edges(func(e Edge) bool {
					sum += int64(e.To - e.From)
					return true
				})
				if _, ok := g.Lookup(g.ExternalID(0)); ok {
					sum++
				}
			}
			results[slot] = sum
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if results[w] != results[0] {
			t.Fatalf("concurrent readers disagree: %d vs %d", results[w], results[0])
		}
	}
}
