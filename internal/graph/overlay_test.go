package graph

import (
	"math/rand"
	"testing"
)

func buildTestGraph(t *testing.T, directed bool) *Graph {
	t.Helper()
	b := NewBuilder(directed)
	edges := [][2]int64{
		{1, 2}, {2, 3}, {3, 4}, {4, 1}, {1, 3}, {4, 5}, {5, 6}, {6, 1},
	}
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	b.AddVertex(99) // isolated vertex exercises empty rows
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func viewsEqual(t *testing.T, a, b View) bool {
	t.Helper()
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for v := 0; v < a.NumVertices(); v++ {
		oa, ob := a.OutNeighbors(VID(v)), b.OutNeighbors(VID(v))
		if len(oa) != len(ob) {
			return false
		}
		for i := range oa {
			if oa[i] != ob[i] {
				return false
			}
		}
		ia, ib := a.InNeighbors(VID(v)), b.InNeighbors(VID(v))
		if len(ia) != len(ib) {
			return false
		}
		for i := range ia {
			if ia[i] != ib[i] {
				return false
			}
		}
	}
	return true
}

func TestOverlayStartsEqualToParent(t *testing.T) {
	for _, directed := range []bool{false, true} {
		g := buildTestGraph(t, directed)
		o := NewOverlay(g)
		if !viewsEqual(t, g, o) {
			t.Errorf("directed=%v: fresh overlay differs from parent", directed)
		}
		if o.Parent() != g {
			t.Error("Parent() mismatch")
		}
	}
}

func TestOverlayFillFromEdgesRoundTrip(t *testing.T) {
	for _, directed := range []bool{false, true} {
		g := buildTestGraph(t, directed)
		o := NewOverlay(g)
		// Refill with the parent's own edge list in shuffled order: the
		// result must equal the parent exactly (rows re-sorted).
		edges := g.EdgeList()
		rng := rand.New(rand.NewSource(7))
		rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
		if err := o.FillFromEdges(edges); err != nil {
			t.Fatalf("directed=%v: %v", directed, err)
		}
		if !viewsEqual(t, g, o) {
			t.Errorf("directed=%v: refilled overlay differs from parent", directed)
		}
		if !o.HasEdge(mustLookup(t, g, 1), mustLookup(t, g, 2)) {
			t.Error("HasEdge lost an edge after refill")
		}
	}
}

func TestOverlayFillRejectsDegreeMismatch(t *testing.T) {
	g := buildTestGraph(t, true)
	o := NewOverlay(g)
	edges := g.EdgeList()
	// Redirect one arc's tail to a different vertex: some row overflows
	// (or ends underfull) and the fill must fail without panicking.
	moved := false
	for j := 1; j < len(edges); j++ {
		if edges[j].From != edges[0].From {
			edges[0].From = edges[j].From
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("test graph needs arcs with distinct tails")
	}
	if err := o.FillFromEdges(edges); err == nil {
		t.Fatal("expected degree-mismatch error")
	}
}

func TestOverlayCutMatchesMaterialized(t *testing.T) {
	for _, directed := range []bool{false, true} {
		g := buildTestGraph(t, directed)
		o := NewOverlay(g)
		// Swap-like perturbation: reverse the list (undirected) keeps the
		// same multiset, so Cut must agree with the parent.
		if err := o.FillFromEdges(g.EdgeList()); err != nil {
			t.Fatal(err)
		}
		set := SetOf(g, []VID{0, 1, 2})
		cg, co := Cut(g, set), Cut(o, set)
		if cg != co {
			t.Errorf("directed=%v: Cut mismatch graph=%+v overlay=%+v", directed, cg, co)
		}
		mat, err := o.Materialize()
		if err != nil {
			t.Fatal(err)
		}
		if cm := Cut(mat, set); cm != co {
			t.Errorf("directed=%v: materialized Cut mismatch %+v vs %+v", directed, cm, co)
		}
	}
}

func TestOverlayArenaReuse(t *testing.T) {
	g := buildTestGraph(t, false)
	a := NewOverlayArena(g)
	o1 := a.Get()
	a.Put(o1)
	o2 := a.Get()
	if o2 != o1 {
		// sync.Pool gives no hard guarantee, but single-goroutine
		// get/put/get reuse holds in practice; treat a miss as a skip,
		// not a failure, to stay robust against runtime changes.
		t.Skip("pool did not reuse the overlay; nothing to assert")
	}
	o2.Reset()
	if !viewsEqual(t, g, o2) {
		t.Error("recycled overlay Reset() differs from parent")
	}
}

func TestOverlayArenaRejectsForeignOverlay(t *testing.T) {
	g1 := buildTestGraph(t, false)
	g2 := buildTestGraph(t, true)
	a := NewOverlayArena(g1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on Put of a foreign overlay")
		}
	}()
	a.Put(NewOverlay(g2))
}

func mustLookup(t *testing.T, g *Graph, id int64) VID {
	t.Helper()
	v, ok := g.Lookup(id)
	if !ok {
		t.Fatalf("vertex %d missing", id)
	}
	return v
}
