package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetBasics(t *testing.T) {
	s := NewSet(100)
	if s.Len() != 0 {
		t.Fatalf("empty set Len = %d", s.Len())
	}
	s.Add(5)
	s.Add(70)
	s.Add(5) // duplicate
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
	if !s.Contains(5) || !s.Contains(70) || s.Contains(6) {
		t.Error("Contains gives wrong answers")
	}
	s.Clear()
	if s.Len() != 0 || s.Contains(5) {
		t.Error("Clear did not empty the set")
	}
}

func TestSetFillAndSortedMembers(t *testing.T) {
	s := NewSet(64)
	s.Fill([]VID{9, 3, 7, 3})
	got := s.SortedMembers()
	want := []VID{3, 7, 9}
	if len(got) != len(want) {
		t.Fatalf("SortedMembers = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedMembers = %v, want %v", got, want)
		}
	}
}

// A known directed example: 4-vertex graph, C = {0,1}.
//
//	0 -> 1, 1 -> 0 (internal pair)
//	1 -> 2 (boundary out), 3 -> 0 (boundary in), 2 -> 3 (external only)
func TestCutDirectedKnown(t *testing.T) {
	g, err := FromEdges(true, [][2]int64{{0, 1}, {1, 0}, {1, 2}, {3, 0}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	var members []VID
	for _, ext := range []int64{0, 1} {
		v, _ := g.Lookup(ext)
		members = append(members, v)
	}
	st := Cut(g, SetOf(g, members))
	if st.N != 2 {
		t.Errorf("N = %d, want 2", st.N)
	}
	if st.Internal != 2 {
		t.Errorf("Internal = %d, want 2", st.Internal)
	}
	if st.Boundary != 2 {
		t.Errorf("Boundary = %d, want 2", st.Boundary)
	}
	// d(0)=out1+in2=3, d(1)=out2+in1=3
	if st.DegreeSum != 6 {
		t.Errorf("DegreeSum = %d, want 6", st.DegreeSum)
	}
}

// A known undirected example: path 0-1-2-3, C = {1,2}.
func TestCutUndirectedKnown(t *testing.T) {
	g, err := FromEdges(false, [][2]int64{{0, 1}, {1, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	v1, _ := g.Lookup(1)
	v2, _ := g.Lookup(2)
	st := Cut(g, SetOf(g, []VID{v1, v2}))
	if st.Internal != 1 {
		t.Errorf("Internal = %d, want 1", st.Internal)
	}
	if st.Boundary != 2 {
		t.Errorf("Boundary = %d, want 2", st.Boundary)
	}
	if st.DegreeSum != 4 {
		t.Errorf("DegreeSum = %d, want 4", st.DegreeSum)
	}
}

// Property: for any set C in a directed graph,
// sum of degrees in C = 2*Internal + Boundary.
func TestQuickCutDegreeIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := FromEdges(true, randomEdges(rng, 20, 70))
		if err != nil {
			return true
		}
		// Random subset of about half the vertices.
		var members []VID
		for v := 0; v < g.NumVertices(); v++ {
			if rng.Intn(2) == 0 {
				members = append(members, VID(v))
			}
		}
		st := Cut(g, SetOf(g, members))
		return st.DegreeSum == 2*st.Internal+st.Boundary
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the same identity holds for undirected graphs.
func TestQuickCutDegreeIdentityUndirected(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := FromEdges(false, randomEdges(rng, 18, 60))
		if err != nil {
			return true
		}
		var members []VID
		for v := 0; v < g.NumVertices(); v++ {
			if rng.Intn(3) != 0 {
				members = append(members, VID(v))
			}
		}
		st := Cut(g, SetOf(g, members))
		return st.DegreeSum == 2*st.Internal+st.Boundary
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Cut over the full vertex set has Internal = m, Boundary = 0.
func TestQuickCutFullSet(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		directed := seed%2 == 0
		g, err := FromEdges(directed, randomEdges(rng, 16, 50))
		if err != nil {
			return true
		}
		st := Cut(g, SetOf(g, g.Vertices()))
		return st.Internal == g.NumEdges() && st.Boundary == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
