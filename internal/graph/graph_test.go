package graph

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// triangle returns the directed 3-cycle 1->2->3->1.
func triangle(t *testing.T) *Graph {
	t.Helper()
	g, err := FromEdges(true, [][2]int64{{1, 2}, {2, 3}, {3, 1}})
	if err != nil {
		t.Fatalf("build triangle: %v", err)
	}
	return g
}

func TestBuildEmptyGraphFails(t *testing.T) {
	_, err := NewBuilder(true).Build()
	if !errors.Is(err, ErrEmptyGraph) {
		t.Fatalf("got err %v, want ErrEmptyGraph", err)
	}
}

func TestDirectedBasics(t *testing.T) {
	g := triangle(t)
	if got := g.NumVertices(); got != 3 {
		t.Errorf("NumVertices = %d, want 3", got)
	}
	if got := g.NumEdges(); got != 3 {
		t.Errorf("NumEdges = %d, want 3", got)
	}
	if !g.Directed() {
		t.Error("Directed() = false, want true")
	}
	for v := VID(0); v < 3; v++ {
		if d := g.Degree(v); d != 2 {
			t.Errorf("Degree(%d) = %d, want 2", v, d)
		}
		if d := g.OutDegree(v); d != 1 {
			t.Errorf("OutDegree(%d) = %d, want 1", v, d)
		}
		if d := g.InDegree(v); d != 1 {
			t.Errorf("InDegree(%d) = %d, want 1", v, d)
		}
	}
}

func TestExternalIDRoundTrip(t *testing.T) {
	g, err := FromEdges(true, [][2]int64{{100, 7}, {7, 42}})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumVertices(); v++ {
		ext := g.ExternalID(VID(v))
		back, ok := g.Lookup(ext)
		if !ok || back != VID(v) {
			t.Errorf("Lookup(ExternalID(%d)) = %d,%v", v, back, ok)
		}
	}
	if _, ok := g.Lookup(9999); ok {
		t.Error("Lookup(9999) found a vertex, want miss")
	}
	if _, err := g.MustLookup(9999); err == nil {
		t.Error("MustLookup(9999) = nil error, want error")
	}
}

func TestIDsAssignedInAscendingOrder(t *testing.T) {
	g, err := FromEdges(false, [][2]int64{{50, 10}, {10, 30}})
	if err != nil {
		t.Fatal(err)
	}
	ids := g.ExternalIDs()
	want := []int64{10, 30, 50}
	for i, id := range ids {
		if id != want[i] {
			t.Fatalf("ids = %v, want %v", ids, want)
		}
	}
}

func TestSelfLoopsDropped(t *testing.T) {
	g, err := FromEdges(true, [][2]int64{{1, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1 (self-loop dropped)", g.NumEdges())
	}
}

func TestDuplicateEdgesDeduped(t *testing.T) {
	g, err := FromEdges(true, [][2]int64{{1, 2}, {1, 2}, {1, 2}, {2, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2", g.NumEdges())
	}
}

func TestUndirectedNormalization(t *testing.T) {
	// {1,2} added both ways must produce a single edge.
	g, err := FromEdges(false, [][2]int64{{1, 2}, {2, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1", g.NumEdges())
	}
	u, _ := g.Lookup(1)
	v, _ := g.Lookup(2)
	if !g.HasEdge(u, v) || !g.HasEdge(v, u) {
		t.Error("undirected adjacency not symmetric")
	}
	if g.Degree(u) != 1 || g.Degree(v) != 1 {
		t.Errorf("degrees = %d,%d, want 1,1", g.Degree(u), g.Degree(v))
	}
}

func TestHasEdgeDirected(t *testing.T) {
	g := triangle(t)
	v1, _ := g.Lookup(1)
	v2, _ := g.Lookup(2)
	if !g.HasEdge(v1, v2) {
		t.Error("HasEdge(1->2) = false, want true")
	}
	if g.HasEdge(v2, v1) {
		t.Error("HasEdge(2->1) = true, want false")
	}
}

func TestEdgesIterationDirected(t *testing.T) {
	g := triangle(t)
	var count int
	g.Edges(func(Edge) bool { count++; return true })
	if count != 3 {
		t.Errorf("iterated %d edges, want 3", count)
	}
}

func TestEdgesIterationUndirectedReportsOnce(t *testing.T) {
	g, err := FromEdges(false, [][2]int64{{1, 2}, {2, 3}, {3, 1}})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[Edge]bool{}
	g.Edges(func(e Edge) bool {
		if e.From >= e.To {
			t.Errorf("edge %v not in canonical From<To order", e)
		}
		if seen[e] {
			t.Errorf("edge %v reported twice", e)
		}
		seen[e] = true
		return true
	})
	if len(seen) != 3 {
		t.Errorf("saw %d edges, want 3", len(seen))
	}
}

func TestEdgesEarlyStop(t *testing.T) {
	g := triangle(t)
	var count int
	g.Edges(func(Edge) bool { count++; return false })
	if count != 1 {
		t.Errorf("iterated %d edges after early stop, want 1", count)
	}
}

func TestIsolatedVertex(t *testing.T) {
	b := NewBuilder(true)
	b.AddEdge(1, 2)
	b.AddVertex(99)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 {
		t.Fatalf("NumVertices = %d, want 3", g.NumVertices())
	}
	v, _ := g.Lookup(99)
	if g.Degree(v) != 0 {
		t.Errorf("Degree(isolated) = %d, want 0", g.Degree(v))
	}
}

func TestMeanDegrees(t *testing.T) {
	g := triangle(t)
	if got := g.MeanDegree(); got != 2 {
		t.Errorf("MeanDegree = %v, want 2", got)
	}
	if got := g.MeanInDegree(); got != 1 {
		t.Errorf("MeanInDegree = %v, want 1", got)
	}
	if got := g.MeanOutDegree(); got != 1 {
		t.Errorf("MeanOutDegree = %v, want 1", got)
	}
}

func TestNeighborsSorted(t *testing.T) {
	g, err := FromEdges(true, [][2]int64{{1, 5}, {1, 2}, {1, 9}, {1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := g.Lookup(1)
	adj := g.OutNeighbors(v)
	if !sort.SliceIsSorted(adj, func(i, j int) bool { return adj[i] < adj[j] }) {
		t.Errorf("OutNeighbors not sorted: %v", adj)
	}
}

// randomEdges draws k random pairs over ids [0, n).
func randomEdges(rng *rand.Rand, n, k int) [][2]int64 {
	out := make([][2]int64, k)
	for i := range out {
		out[i] = [2]int64{rng.Int63n(int64(n)), rng.Int63n(int64(n))}
	}
	return out
}

// Property: in any directed graph, sum of out-degrees = sum of in-degrees
// = m, and sum of Degree = 2m.
func TestQuickDegreeSums(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := FromEdges(true, randomEdges(rng, 30, 120))
		if err != nil {
			return true // all self-loops is acceptable degenerate input
		}
		var outSum, inSum, dSum int64
		for v := 0; v < g.NumVertices(); v++ {
			outSum += int64(g.OutDegree(VID(v)))
			inSum += int64(g.InDegree(VID(v)))
			dSum += int64(g.Degree(VID(v)))
		}
		return outSum == g.NumEdges() && inSum == g.NumEdges() && dSum == 2*g.NumEdges()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: undirected handshake lemma — sum of degrees = 2m.
func TestQuickHandshake(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := FromEdges(false, randomEdges(rng, 25, 90))
		if err != nil {
			return true
		}
		var dSum int64
		for v := 0; v < g.NumVertices(); v++ {
			dSum += int64(g.Degree(VID(v)))
		}
		return dSum == 2*g.NumEdges()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: HasEdge agrees with the edge iterator.
func TestQuickHasEdgeConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := FromEdges(true, randomEdges(rng, 20, 60))
		if err != nil {
			return true
		}
		ok := true
		g.Edges(func(e Edge) bool {
			if !g.HasEdge(e.From, e.To) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: build is deterministic under edge-order permutation.
func TestQuickBuildOrderIndependent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		edges := randomEdges(rng, 15, 40)
		g1, err1 := FromEdges(true, edges)
		shuffled := make([][2]int64, len(edges))
		copy(shuffled, edges)
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		g2, err2 := FromEdges(true, shuffled)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		if g1.NumVertices() != g2.NumVertices() || g1.NumEdges() != g2.NumEdges() {
			return false
		}
		e1, e2 := g1.EdgeList(), g2.EdgeList()
		for i := range e1 {
			if e1[i] != e2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
