package graph

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestBinaryRoundTripDirected(t *testing.T) {
	g, err := FromEdges(true, [][2]int64{{10, 20}, {20, 30}, {30, 10}, {10, 30}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsEqual(t, g, back)
}

func TestBinaryRoundTripUndirected(t *testing.T) {
	g, err := FromEdges(false, [][2]int64{{1, 2}, {2, 3}, {1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsEqual(t, g, back)
}

func assertGraphsEqual(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.Directed() != b.Directed() || a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("shape mismatch: (%v,%d,%d) vs (%v,%d,%d)",
			a.Directed(), a.NumVertices(), a.NumEdges(),
			b.Directed(), b.NumVertices(), b.NumEdges())
	}
	for v := 0; v < a.NumVertices(); v++ {
		if a.ExternalID(VID(v)) != b.ExternalID(VID(v)) {
			t.Fatalf("external ID mismatch at %d", v)
		}
	}
	ea, eb := a.EdgeList(), b.EdgeList()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d: %v vs %v", i, ea[i], eb[i])
		}
	}
	// Lookups work on the restored graph.
	for v := 0; v < b.NumVertices(); v++ {
		got, ok := b.Lookup(b.ExternalID(VID(v)))
		if !ok || got != VID(v) {
			t.Fatalf("lookup broken at %d", v)
		}
	}
}

func TestReadBinaryGarbage(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("not a gob stream")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestReadBinaryValidatesInvariants(t *testing.T) {
	g, err := FromEdges(true, [][2]int64{{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the edge count and re-encode through the public API by
	// tampering with the serialized graph's m field via a copy.
	bad := *g
	bad.m = 99
	var buf bytes.Buffer
	if err := WriteBinary(&buf, &bad); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBinary(&buf); !errors.Is(err, ErrBadBinary) {
		t.Errorf("err = %v, want ErrBadBinary", err)
	}
}

// Property: binary round trips are lossless for arbitrary graphs.
func TestQuickBinaryRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := FromEdges(seed%2 == 0, randomEdges(rng, 25, 70))
		if err != nil {
			return true
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			return false
		}
		back, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if back.NumVertices() != g.NumVertices() || back.NumEdges() != g.NumEdges() {
			return false
		}
		ea, eb := g.EdgeList(), back.EdgeList()
		for i := range ea {
			if ea[i] != eb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
