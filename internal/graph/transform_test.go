package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUndirectedProjectionCollapsesBidirectional(t *testing.T) {
	g, err := FromEdges(true, [][2]int64{{1, 2}, {2, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	u, err := Undirected(g)
	if err != nil {
		t.Fatal(err)
	}
	if u.Directed() {
		t.Error("projection still directed")
	}
	if u.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2 (pair collapsed)", u.NumEdges())
	}
	if u.NumVertices() != g.NumVertices() {
		t.Errorf("vertex count changed: %d -> %d", g.NumVertices(), u.NumVertices())
	}
}

func TestUndirectedPreservesExternalIDs(t *testing.T) {
	g, err := FromEdges(true, [][2]int64{{100, 200}})
	if err != nil {
		t.Fatal(err)
	}
	u, err := Undirected(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := u.Lookup(100); !ok {
		t.Error("external ID 100 lost in projection")
	}
	if _, ok := u.Lookup(200); !ok {
		t.Error("external ID 200 lost in projection")
	}
}

func TestReciprocalEdgeCount(t *testing.T) {
	g, err := FromEdges(true, [][2]int64{{1, 2}, {2, 1}, {2, 3}, {3, 4}, {4, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if got := ReciprocalEdgeCount(g); got != 4 {
		t.Errorf("ReciprocalEdgeCount = %d, want 4", got)
	}
}

func TestSubgraphKnown(t *testing.T) {
	g, err := FromEdges(true, [][2]int64{{1, 2}, {2, 3}, {3, 1}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	var members []VID
	for _, ext := range []int64{1, 2, 3} {
		v, _ := g.Lookup(ext)
		members = append(members, v)
	}
	sub, err := Subgraph(g, members)
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumVertices() != 3 {
		t.Errorf("NumVertices = %d, want 3", sub.NumVertices())
	}
	if sub.NumEdges() != 3 {
		t.Errorf("NumEdges = %d, want 3 (3->4 dropped)", sub.NumEdges())
	}
}

func TestRelabelDensifiesIDs(t *testing.T) {
	g, err := FromEdges(true, [][2]int64{{1000, 2000}, {2000, 5}})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Relabel(g)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < r.NumVertices(); v++ {
		if r.ExternalID(VID(v)) != int64(v) {
			t.Errorf("ExternalID(%d) = %d, want %d", v, r.ExternalID(VID(v)), v)
		}
	}
	if r.NumEdges() != g.NumEdges() {
		t.Errorf("edge count changed: %d -> %d", g.NumEdges(), r.NumEdges())
	}
}

// Property: undirected projection preserves reachability-relevant counts:
// m_undirected = m_directed - reciprocal/2, and degrees never increase
// beyond the directed total degree.
func TestQuickUndirectedEdgeCount(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := FromEdges(true, randomEdges(rng, 22, 80))
		if err != nil {
			return true
		}
		u, err := Undirected(g)
		if err != nil {
			return false
		}
		recip := ReciprocalEdgeCount(g)
		return u.NumEdges() == g.NumEdges()-recip/2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: subgraph of the full vertex set is the identity on
// vertex/edge counts.
func TestQuickSubgraphFull(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		directed := seed%2 == 0
		g, err := FromEdges(directed, randomEdges(rng, 15, 45))
		if err != nil {
			return true
		}
		sub, err := Subgraph(g, g.Vertices())
		if err != nil {
			return false
		}
		return sub.NumVertices() == g.NumVertices() && sub.NumEdges() == g.NumEdges()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: every edge of an induced subgraph exists in the parent.
func TestQuickSubgraphEdgesExistInParent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := FromEdges(true, randomEdges(rng, 20, 60))
		if err != nil {
			return true
		}
		var members []VID
		for v := 0; v < g.NumVertices(); v++ {
			if rng.Intn(2) == 0 {
				members = append(members, VID(v))
			}
		}
		if len(members) == 0 {
			return true
		}
		sub, err := Subgraph(g, members)
		if err != nil {
			return false
		}
		ok := true
		sub.Edges(func(e Edge) bool {
			pu, _ := g.Lookup(sub.ExternalID(e.From))
			pv, _ := g.Lookup(sub.ExternalID(e.To))
			if !g.HasEdge(pu, pv) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
