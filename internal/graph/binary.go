package graph

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
)

// binaryVersion guards the on-disk layout of WriteBinary.
const binaryVersion = 1

// ErrBadBinary is returned when a binary graph stream is malformed or of
// an unsupported version.
var ErrBadBinary = errors.New("graph: malformed binary graph")

// binaryGraph is the gob DTO mirroring the CSR layout. Text edge lists
// (package dataset) are the interchange format; the binary form exists
// for fast reload of large graphs, restoring the CSR arrays directly
// instead of re-sorting edges.
type binaryGraph struct {
	Version  int
	Directed bool
	IDs      []int64
	OutOff   []int64
	OutAdj   []VID
	InOff    []int64 // nil for undirected (aliases out)
	InAdj    []VID
	M        int64
}

// WriteBinary serializes the graph in a compact binary form.
func WriteBinary(w io.Writer, g *Graph) error {
	dto := binaryGraph{
		Version:  binaryVersion,
		Directed: g.directed,
		IDs:      g.ids,
		OutOff:   g.outOff,
		OutAdj:   g.outAdj,
		M:        g.m,
	}
	if g.directed {
		dto.InOff = g.inOff
		dto.InAdj = g.inAdj
	}
	if err := gob.NewEncoder(w).Encode(dto); err != nil {
		return fmt.Errorf("encode binary graph: %w", err)
	}
	return nil
}

// ReadBinary reads a graph written by WriteBinary and validates its
// structural invariants before returning it.
func ReadBinary(r io.Reader) (*Graph, error) {
	var dto binaryGraph
	if err := gob.NewDecoder(r).Decode(&dto); err != nil {
		return nil, fmt.Errorf("decode binary graph: %w", err)
	}
	if dto.Version != binaryVersion {
		return nil, fmt.Errorf("%w: version %d (want %d)", ErrBadBinary, dto.Version, binaryVersion)
	}
	n := len(dto.IDs)
	if len(dto.OutOff) != n+1 {
		return nil, fmt.Errorf("%w: offsets length %d for %d vertices", ErrBadBinary, len(dto.OutOff), n)
	}
	if dto.OutOff[0] != 0 || dto.OutOff[n] != int64(len(dto.OutAdj)) {
		return nil, fmt.Errorf("%w: offset bounds", ErrBadBinary)
	}
	for i := 0; i < n; i++ {
		if dto.OutOff[i] > dto.OutOff[i+1] {
			return nil, fmt.Errorf("%w: decreasing offsets at %d", ErrBadBinary, i)
		}
	}
	for _, v := range dto.OutAdj {
		if v < 0 || int(v) >= n {
			return nil, fmt.Errorf("%w: adjacency target %d out of range", ErrBadBinary, v)
		}
	}
	g := &Graph{
		directed: dto.Directed,
		ids:      dto.IDs,
		index:    make(map[int64]VID, n),
		outOff:   dto.OutOff,
		outAdj:   dto.OutAdj,
		m:        dto.M,
	}
	prev := int64(0)
	first := true
	for i, id := range dto.IDs {
		if !first && id <= prev {
			return nil, fmt.Errorf("%w: IDs not strictly ascending", ErrBadBinary)
		}
		prev, first = id, false
		g.index[id] = VID(i)
	}
	if dto.Directed {
		if len(dto.InOff) != n+1 {
			return nil, fmt.Errorf("%w: in-offsets length %d", ErrBadBinary, len(dto.InOff))
		}
		for _, v := range dto.InAdj {
			if v < 0 || int(v) >= n {
				return nil, fmt.Errorf("%w: in-adjacency target %d out of range", ErrBadBinary, v)
			}
		}
		g.inOff = dto.InOff
		g.inAdj = dto.InAdj
		if int64(len(g.outAdj)) != dto.M || int64(len(g.inAdj)) != dto.M {
			return nil, fmt.Errorf("%w: edge count mismatch", ErrBadBinary)
		}
	} else {
		g.inOff, g.inAdj = g.outOff, g.outAdj
		if int64(len(g.outAdj)) != 2*dto.M {
			return nil, fmt.Errorf("%w: undirected adjacency/edge mismatch", ErrBadBinary)
		}
	}
	return g, nil
}
