// Package graph provides the social-graph substrate used throughout the
// reproduction: an immutable, memory-compact directed or undirected graph
// in compressed-sparse-row (CSR) form, a mutable Builder to construct it,
// vertex-ID interning between external (data set) IDs and dense internal
// indices, and set primitives used by the community scoring functions.
//
// Conventions, following the paper's nomenclature (Table I):
//
//   - n = NumVertices, m = NumEdges.
//   - In a directed graph, m counts arcs; the degree d(v) of a vertex is
//     the number of incident arcs, i.e. in-degree + out-degree.
//   - In an undirected graph, m counts edges once; d(v) is the number of
//     incident edges. Internally each undirected edge is stored in both
//     adjacency lists.
//   - Self-loops and duplicate edges are silently dropped at Build time;
//     the evaluated data sets are simple graphs.
package graph

import (
	"fmt"
	"sort"
)

// VID is a dense internal vertex index in [0, NumVertices).
type VID = int32

// Graph is an immutable simple graph in CSR form. The zero value is an
// empty graph with no vertices; use a Builder to construct non-trivial
// graphs. Graph values are safe for concurrent use by multiple goroutines
// because they are never mutated after construction.
type Graph struct {
	directed bool

	ids   []int64       // dense index -> external ID, ascending
	index map[int64]VID // external ID -> dense index

	outOff []int64 // len NumVertices+1; CSR row offsets into outAdj
	outAdj []VID   // sorted within each row

	// inOff/inAdj describe the reverse adjacency. For undirected graphs
	// they alias outOff/outAdj since adjacency is symmetric.
	inOff []int64
	inAdj []VID

	m int64 // arcs if directed, edges if undirected
}

// Directed reports whether the graph is directed.
func (g *Graph) Directed() bool { return g.directed }

// NumVertices returns n, the number of vertices.
func (g *Graph) NumVertices() int { return len(g.ids) }

// NumEdges returns m: the number of arcs for a directed graph, or the
// number of undirected edges for an undirected graph.
func (g *Graph) NumEdges() int64 { return g.m }

// ExternalID returns the data-set ID of the dense vertex v.
func (g *Graph) ExternalID(v VID) int64 { return g.ids[v] }

// Lookup resolves an external data-set ID to a dense vertex index.
// Graphs built without an interning map (StreamBuilder's dense mode
// skips it to keep paper-scale graphs at O(n) extra bytes) fall back to
// binary search over the ascending ids table.
func (g *Graph) Lookup(external int64) (VID, bool) {
	if g.index != nil {
		v, ok := g.index[external]
		return v, ok
	}
	i := sort.Search(len(g.ids), func(i int) bool { return g.ids[i] >= external })
	if i < len(g.ids) && g.ids[i] == external {
		return VID(i), true
	}
	return 0, false
}

// MustLookup resolves an external ID, returning an error naming the ID if
// it is absent from the graph.
func (g *Graph) MustLookup(external int64) (VID, error) {
	v, ok := g.Lookup(external)
	if !ok {
		return 0, fmt.Errorf("vertex %d: not in graph", external)
	}
	return v, nil
}

// OutNeighbors returns the out-adjacency of v as a shared, sorted slice.
// For undirected graphs this is the full neighborhood. Callers must not
// modify the returned slice.
func (g *Graph) OutNeighbors(v VID) []VID {
	return g.outAdj[g.outOff[v]:g.outOff[v+1]]
}

// InNeighbors returns the in-adjacency of v as a shared, sorted slice.
// For undirected graphs this equals OutNeighbors. Callers must not modify
// the returned slice.
func (g *Graph) InNeighbors(v VID) []VID {
	return g.inAdj[g.inOff[v]:g.inOff[v+1]]
}

// OutDegree returns the number of arcs leaving v (or, undirected, the
// number of incident edges).
func (g *Graph) OutDegree(v VID) int {
	return int(g.outOff[v+1] - g.outOff[v])
}

// InDegree returns the number of arcs entering v (or, undirected, the
// number of incident edges).
func (g *Graph) InDegree(v VID) int {
	return int(g.inOff[v+1] - g.inOff[v])
}

// Degree returns d(v) per the paper's nomenclature: in-degree plus
// out-degree for directed graphs, incident-edge count for undirected.
func (g *Graph) Degree(v VID) int {
	if g.directed {
		return g.OutDegree(v) + g.InDegree(v)
	}
	return g.OutDegree(v)
}

// HasEdge reports whether the arc (u,v) exists (directed), or whether the
// edge {u,v} exists (undirected). Runs in O(log deg(u)).
func (g *Graph) HasEdge(u, v VID) bool {
	adj := g.OutNeighbors(u)
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= v })
	return i < len(adj) && adj[i] == v
}

// Edge is a single arc or edge between dense vertex indices.
type Edge struct {
	From, To VID
}

// Edges iterates over every arc (directed) or every edge once with
// From < To (undirected), invoking fn until it returns false.
func (g *Graph) Edges(fn func(e Edge) bool) {
	n := VID(g.NumVertices())
	for u := VID(0); u < n; u++ {
		for _, v := range g.OutNeighbors(u) {
			if !g.directed && v < u {
				continue // report each undirected edge once
			}
			if !fn(Edge{From: u, To: v}) {
				return
			}
		}
	}
}

// EdgeList materializes Edges into a slice of m entries either way: every
// arc for a directed graph, or each undirected edge listed once with
// From < To. Intended for tests, small graphs, and seeding the null-model
// rewiring chain.
func (g *Graph) EdgeList() []Edge {
	out := make([]Edge, 0, g.m)
	g.Edges(func(e Edge) bool {
		out = append(out, e)
		return true
	})
	return out
}

// Vertices returns the dense vertex indices 0..n-1 as a fresh slice.
func (g *Graph) Vertices() []VID {
	out := make([]VID, g.NumVertices())
	for i := range out {
		out[i] = VID(i)
	}
	return out
}

// ExternalIDs returns a copy of the dense-index -> external-ID table.
func (g *Graph) ExternalIDs() []int64 {
	out := make([]int64, len(g.ids))
	copy(out, g.ids)
	return out
}

// DegreeSequence returns d(v) for every vertex in dense-index order.
func (g *Graph) DegreeSequence() []int {
	out := make([]int, g.NumVertices())
	for v := range out {
		out[v] = g.Degree(VID(v))
	}
	return out
}

// InDegreeSequence returns the in-degree of every vertex in dense-index
// order. For undirected graphs this equals DegreeSequence.
func (g *Graph) InDegreeSequence() []int {
	out := make([]int, g.NumVertices())
	for v := range out {
		out[v] = g.InDegree(VID(v))
	}
	return out
}

// OutDegreeSequence returns the out-degree of every vertex in dense-index
// order. For undirected graphs this equals DegreeSequence.
func (g *Graph) OutDegreeSequence() []int {
	out := make([]int, g.NumVertices())
	for v := range out {
		out[v] = g.OutDegree(VID(v))
	}
	return out
}

// MeanDegree returns the average of DegreeSequence: 2m/n for undirected
// graphs and 2m/n for directed graphs as well (each arc contributes one
// out- and one in-degree unit).
func (g *Graph) MeanDegree() float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	return 2 * float64(g.m) / float64(n)
}

// MeanInDegree returns m/n for directed graphs (2m/n undirected).
func (g *Graph) MeanInDegree() float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	var total int64
	for v := 0; v < n; v++ {
		total += int64(g.InDegree(VID(v)))
	}
	return float64(total) / float64(n)
}

// MeanOutDegree returns m/n for directed graphs (2m/n undirected).
func (g *Graph) MeanOutDegree() float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	var total int64
	for v := 0; v < n; v++ {
		total += int64(g.OutDegree(VID(v)))
	}
	return float64(total) / float64(n)
}
