package detect

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"gpluscircles/internal/graph"
	"gpluscircles/internal/score"
	"gpluscircles/internal/synth"
)

// twoCliques builds two K5s joined by a single bridge edge.
func twoCliques(t *testing.T) (*graph.Graph, [][]graph.VID) {
	t.Helper()
	b := graph.NewBuilder(false)
	for c := int64(0); c < 2; c++ {
		base := c * 5
		for i := base; i < base+5; i++ {
			for j := i + 1; j < base+5; j++ {
				b.AddEdge(i, j)
			}
		}
	}
	b.AddEdge(4, 5)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var truth [][]graph.VID
	for c := int64(0); c < 2; c++ {
		var members []graph.VID
		for i := c * 5; i < c*5+5; i++ {
			v, _ := g.Lookup(i)
			members = append(members, v)
		}
		truth = append(truth, members)
	}
	return g, truth
}

func TestLabelPropagationTwoCliques(t *testing.T) {
	g, truth := twoCliques(t)
	groups, err := LabelPropagation(g, LabelPropagationOptions{}, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("detected %d communities, want 2", len(groups))
	}
	truthGroups := []score.Group{
		{Name: "a", Members: truth[0]},
		{Name: "b", Members: truth[1]},
	}
	res := MatchGroups(truthGroups, groups)
	if res.F1 < 0.99 {
		t.Errorf("F1 = %v, want ~1 on two cliques", res.F1)
	}
}

func TestLabelPropagationNilRNG(t *testing.T) {
	g, _ := twoCliques(t)
	if _, err := LabelPropagation(g, LabelPropagationOptions{}, nil); !errors.Is(err, ErrNoRNG) {
		t.Errorf("err = %v, want ErrNoRNG", err)
	}
}

func TestLabelPropagationMinSize(t *testing.T) {
	// A triangle plus an isolated edge: with MinCommunitySize 3 only the
	// triangle survives.
	g, err := graph.FromEdges(false, [][2]int64{{0, 1}, {1, 2}, {2, 0}, {10, 11}})
	if err != nil {
		t.Fatal(err)
	}
	groups, err := LabelPropagation(g, LabelPropagationOptions{MinCommunitySize: 3}, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	for _, grp := range groups {
		if len(grp.Members) < 3 {
			t.Errorf("group %s has %d members (< min)", grp.Name, len(grp.Members))
		}
	}
}

func TestDetectEgoCirclesRecoversPlanted(t *testing.T) {
	// Owner 100 with two internally-dense facets among the alters.
	b := graph.NewBuilder(true)
	var egoExt []int64
	egoExt = append(egoExt, 100)
	for c := int64(0); c < 2; c++ {
		base := c * 6
		for i := base; i < base+6; i++ {
			b.AddEdge(100, i)
			egoExt = append(egoExt, i)
			for j := base; j < base+6; j++ {
				if i != j {
					b.AddEdge(i, j)
				}
			}
		}
	}
	b.AddEdge(0, 6) // weak tie between the facets
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	egoNet := make([]graph.VID, 0, len(egoExt))
	for _, ext := range egoExt {
		v, err := g.MustLookup(ext)
		if err != nil {
			t.Fatal(err)
		}
		egoNet = append(egoNet, v)
	}
	detected, err := DetectEgoCircles(g, egoNet, LabelPropagationOptions{}, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if len(detected) != 2 {
		t.Fatalf("detected %d circles, want 2", len(detected))
	}
	// The owner must not appear in any detected circle.
	owner := egoNet[0]
	for _, grp := range detected {
		for _, v := range grp.Members {
			if v == owner {
				t.Error("owner leaked into a detected circle")
			}
		}
	}
}

func TestDetectEgoCirclesValidation(t *testing.T) {
	g, _ := twoCliques(t)
	if _, err := DetectEgoCircles(g, []graph.VID{0}, LabelPropagationOptions{}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("single-vertex ego net accepted")
	}
	if _, err := DetectEgoCircles(g, []graph.VID{0, 1}, LabelPropagationOptions{}, nil); !errors.Is(err, ErrNoRNG) {
		t.Errorf("err = %v, want ErrNoRNG", err)
	}
}

func TestMatchGroupsIdentity(t *testing.T) {
	groups := []score.Group{
		{Name: "a", Members: []graph.VID{0, 1, 2}},
		{Name: "b", Members: []graph.VID{3, 4}},
	}
	res := MatchGroups(groups, groups)
	if math.Abs(res.F1-1) > 1e-12 {
		t.Errorf("self-match F1 = %v, want 1", res.F1)
	}
}

func TestMatchGroupsDisjoint(t *testing.T) {
	a := []score.Group{{Name: "a", Members: []graph.VID{0, 1}}}
	b := []score.Group{{Name: "b", Members: []graph.VID{5, 6}}}
	if res := MatchGroups(a, b); res.F1 != 0 {
		t.Errorf("disjoint F1 = %v, want 0", res.F1)
	}
}

func TestMatchGroupsEmpty(t *testing.T) {
	if res := MatchGroups(nil, nil); res.F1 != 0 {
		t.Errorf("empty F1 = %v, want 0", res.F1)
	}
}

// TestDetectOnSyntheticCommunitiesBeatsChance runs label propagation on a
// modular AGM graph and requires the balanced F1 against the planted
// communities to clearly beat a size-matched random baseline. (Planted
// *circles* in the ego generator are deliberately small, overlapping and
// embedded in dense ego nets — a partition-based detector merging them is
// expected and is itself one of the paper's points; the hand-built ego
// test above covers circle detection on modular facets.)
func TestDetectOnSyntheticCommunitiesBeatsChance(t *testing.T) {
	cfg := synth.DefaultLiveJournalConfig()
	cfg.NumVertices = 1200
	cfg.NumCommunities = 30
	cfg.MaxCommunitySize = 60
	cfg.MembershipsPerVertex = 1.02 // nearly disjoint communities
	cfg.BackgroundDegree = 0.4
	cfg.IntraDegree = 8
	cfg.CohesionSigma = 0.1
	cfg.Seed = 13
	ds, err := synth.GenerateAGM("modular", cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	detected, err := LabelPropagation(ds.Graph, LabelPropagationOptions{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	got := MatchGroups(ds.Groups, detected)

	// Chance baseline: same detected sizes, uniformly random members.
	n := ds.Graph.NumVertices()
	randomized := make([]score.Group, len(detected))
	for i, grp := range detected {
		members := make([]graph.VID, len(grp.Members))
		for j := range members {
			members[j] = graph.VID(rng.Intn(n))
		}
		randomized[i] = score.Group{Name: grp.Name, Members: members}
	}
	chance := MatchGroups(ds.Groups, randomized)
	if got.F1 <= chance.F1+0.1 {
		t.Errorf("detection F1 %.3f not clearly above chance F1 %.3f", got.F1, chance.F1)
	}
}
