package detect

import (
	"math/rand"
	"testing"

	"gpluscircles/internal/graph"
	"gpluscircles/internal/score"
	"gpluscircles/internal/synth"
)

func TestGreedyModularityTwoCliques(t *testing.T) {
	g, truth := twoCliques(t)
	groups, err := GreedyModularity(g, GreedyModularityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("detected %d communities, want 2", len(groups))
	}
	truthGroups := []score.Group{
		{Name: "a", Members: truth[0]},
		{Name: "b", Members: truth[1]},
	}
	res := MatchGroups(truthGroups, groups)
	if res.F1 < 0.99 {
		t.Errorf("F1 = %v, want ~1", res.F1)
	}
}

func TestGreedyModularityEmptyAndEdgeless(t *testing.T) {
	var empty graph.Graph
	if _, err := GreedyModularity(&empty, GreedyModularityOptions{}); err == nil {
		t.Error("empty graph accepted")
	}
	b := graph.NewBuilder(false)
	b.AddVertex(1)
	b.AddVertex(2)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := GreedyModularity(g, GreedyModularityOptions{}); err == nil {
		t.Error("edgeless graph accepted")
	}
}

// TestGreedyModularityBeatsOrMatchesLP compares the two global detectors
// on a modular AGM graph: CNM optimizes modularity directly, so its
// partition's Q must be at least competitive with label propagation's.
func TestGreedyModularityBeatsOrMatchesLP(t *testing.T) {
	cfg := synth.DefaultLiveJournalConfig()
	cfg.NumVertices = 500
	cfg.NumCommunities = 15
	cfg.MaxCommunitySize = 50
	cfg.MembershipsPerVertex = 1.02
	cfg.BackgroundDegree = 0.4
	cfg.IntraDegree = 7
	cfg.CohesionSigma = 0.1
	cfg.Seed = 14
	ds, err := synth.GenerateAGM("modular", cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := score.NewContext(ds.Graph)

	cnm, err := GreedyModularity(ds.Graph, GreedyModularityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	lp, err := LabelPropagation(ds.Graph, LabelPropagationOptions{}, rand.New(rand.NewSource(15)))
	if err != nil {
		t.Fatal(err)
	}
	qCNM := PartitionModularity(ctx, cnm)
	qLP := PartitionModularity(ctx, lp)
	if qCNM < 0.2 {
		t.Errorf("CNM partition Q = %.3f, implausibly low on a modular graph", qCNM)
	}
	if qCNM < qLP-0.1 {
		t.Errorf("CNM Q %.3f clearly below LP Q %.3f", qCNM, qLP)
	}
	// The planted communities should also be recovered reasonably.
	if f1 := MatchGroups(ds.Groups, cnm).F1; f1 < 0.5 {
		t.Errorf("CNM F1 vs planted communities = %.3f, want >= 0.5", f1)
	}
}

func TestGreedyModularityDirected(t *testing.T) {
	// Directed two-clique graph: CNM works on the undirected view.
	b := graph.NewBuilder(true)
	for c := int64(0); c < 2; c++ {
		base := c * 4
		for i := base; i < base+4; i++ {
			for j := base; j < base+4; j++ {
				if i != j {
					b.AddEdge(i, j)
				}
			}
		}
	}
	b.AddEdge(3, 4)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	groups, err := GreedyModularity(g, GreedyModularityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Errorf("directed CNM found %d communities, want 2", len(groups))
	}
}
