package detect

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"gpluscircles/internal/graph"
	"gpluscircles/internal/score"
)

func TestConductanceSweepFindsClique(t *testing.T) {
	g, truth := twoCliques(t)
	seed := truth[0][0]
	grp, cond, err := ConductanceSweep(g, seed, SweepOptions{MaxSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	// The best-conductance set around a clique member is the clique:
	// 5 members, one bridge edge -> conductance 1/(2*10+1).
	if len(grp.Members) != 5 {
		t.Fatalf("sweep found %d members, want 5", len(grp.Members))
	}
	want := 1.0 / 21.0
	if math.Abs(cond-want) > 1e-12 {
		t.Errorf("conductance = %v, want %v", cond, want)
	}
	inClique := map[graph.VID]bool{}
	for _, v := range truth[0] {
		inClique[v] = true
	}
	for _, v := range grp.Members {
		if !inClique[v] {
			t.Errorf("member %d outside the seed clique", v)
		}
	}
}

func TestConductanceSweepBadSeed(t *testing.T) {
	g, _ := twoCliques(t)
	if _, _, err := ConductanceSweep(g, -1, SweepOptions{}); !errors.Is(err, ErrBadSeed) {
		t.Errorf("err = %v, want ErrBadSeed", err)
	}
	if _, _, err := ConductanceSweep(g, graph.VID(g.NumVertices()), SweepOptions{}); !errors.Is(err, ErrBadSeed) {
		t.Errorf("err = %v, want ErrBadSeed", err)
	}
}

func TestConductanceSweepRespectsMaxSize(t *testing.T) {
	// A long path: cap the exploration.
	b := graph.NewBuilder(false)
	for i := int64(0); i < 50; i++ {
		b.AddEdge(i, i+1)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	seed, _ := g.Lookup(25)
	grp, _, err := ConductanceSweep(g, seed, SweepOptions{MaxSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(grp.Members) > 10 {
		t.Errorf("sweep exceeded MaxSize: %d", len(grp.Members))
	}
}

// TestSweepConductanceMatchesScore cross-checks the incremental
// conductance bookkeeping against the score package on the final set.
func TestSweepConductanceMatchesScore(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	edges := make([][2]int64, 300)
	for i := range edges {
		edges[i] = [2]int64{rng.Int63n(40), rng.Int63n(40)}
	}
	g, err := graph.FromEdges(true, edges)
	if err != nil {
		t.Fatal(err)
	}
	grp, cond, err := ConductanceSweep(g, 0, SweepOptions{MaxSize: 15})
	if err != nil {
		t.Fatal(err)
	}
	ctx := score.NewContext(g)
	check := score.Evaluate(ctx, grp.Members, []score.Func{score.Conductance()})["conductance"]
	if math.Abs(check-cond) > 1e-12 {
		t.Errorf("incremental conductance %v != scored %v", cond, check)
	}
}

func TestPartitionModularityTwoCliques(t *testing.T) {
	g, truth := twoCliques(t)
	ctx := score.NewContext(g)
	partition := []score.Group{
		{Name: "a", Members: truth[0]},
		{Name: "b", Members: truth[1]},
	}
	q := PartitionModularity(ctx, partition)
	// Two cliques joined by one edge: strongly modular (Q close to 0.5).
	if q < 0.3 {
		t.Errorf("Q = %v, want > 0.3 for the natural partition", q)
	}
	// The trivial all-in-one partition has Q = 0 under the Chung-Lu
	// expectation minus the full-set deviation; it must be worse.
	all := []score.Group{{Name: "all", Members: g.Vertices()}}
	if qa := PartitionModularity(ctx, all); qa >= q {
		t.Errorf("trivial partition Q %v >= natural %v", qa, q)
	}
}

func TestPartitionModularityAgainstLabelPropagation(t *testing.T) {
	g, _ := twoCliques(t)
	ctx := score.NewContext(g)
	detected, err := LabelPropagation(g, LabelPropagationOptions{}, rand.New(rand.NewSource(81)))
	if err != nil {
		t.Fatal(err)
	}
	if q := PartitionModularity(ctx, detected); q < 0.3 {
		t.Errorf("label-propagation partition Q = %v, want > 0.3", q)
	}
}
