// Package detect implements circle/community detection and the machinery
// to evaluate detected groups against ground truth. The paper's outlook
// (Section VI) proposes moving "from a global to an ego-centred view";
// this package provides that direction: label-propagation community
// detection, greedy modularity agglomeration (CNM, optimizing the
// paper's Eq. 4 directly), conductance-sweep local communities
// (optimizing Eq. 3 around a seed), restriction to ego networks (circle
// discovery in the spirit of McAuley & Leskovec), partition modularity,
// and balanced-F1 scoring of detected groups against planted circles.
package detect

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"gpluscircles/internal/graph"
	"gpluscircles/internal/score"
)

// ErrNoRNG is returned when a nil random source is supplied.
var ErrNoRNG = errors.New("detect: nil RNG")

// LabelPropagationOptions tunes the asynchronous label-propagation run.
type LabelPropagationOptions struct {
	// MaxIter bounds the sweeps over all vertices (default 30).
	MaxIter int
	// MinCommunitySize drops trivial communities from the result
	// (default 3).
	MinCommunitySize int
}

func (o LabelPropagationOptions) withDefaults() LabelPropagationOptions {
	if o.MaxIter <= 0 {
		o.MaxIter = 30
	}
	if o.MinCommunitySize <= 0 {
		o.MinCommunitySize = 3
	}
	return o
}

// LabelPropagation partitions the graph into communities by asynchronous
// label propagation (Raghavan et al.): every vertex repeatedly adopts
// the most frequent label among its neighbours (ties broken at random)
// until labels stabilize. Directed arcs are treated as undirected links.
// Returns the communities as groups, largest first.
func LabelPropagation(g *graph.Graph, opts LabelPropagationOptions, rng *rand.Rand) ([]score.Group, error) {
	if rng == nil {
		return nil, ErrNoRNG
	}
	opts = opts.withDefaults()
	n := g.NumVertices()
	labels := make([]int32, n)
	for v := range labels {
		labels[v] = int32(v)
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}

	counts := map[int32]int{}
	var best []int32
	for iter := 0; iter < opts.MaxIter; iter++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		changed := 0
		for _, vi := range order {
			v := graph.VID(vi)
			for k := range counts {
				delete(counts, k)
			}
			tally := func(w graph.VID) { counts[labels[w]]++ }
			for _, w := range g.OutNeighbors(v) {
				tally(w)
			}
			if g.Directed() {
				for _, w := range g.InNeighbors(v) {
					tally(w)
				}
			}
			if len(counts) == 0 {
				continue
			}
			maxCount := 0
			for _, c := range counts {
				if c > maxCount {
					maxCount = c
				}
			}
			best = best[:0]
			for l, c := range counts {
				if c == maxCount {
					best = append(best, l)
				}
			}
			sort.Slice(best, func(i, j int) bool { return best[i] < best[j] })
			pick := best[rng.Intn(len(best))]
			if pick != labels[v] {
				labels[v] = pick
				changed++
			}
		}
		if changed == 0 {
			break
		}
	}

	byLabel := map[int32][]graph.VID{}
	for v, l := range labels {
		byLabel[l] = append(byLabel[l], graph.VID(v))
	}
	groups := make([]score.Group, 0, len(byLabel))
	for _, members := range byLabel {
		if len(members) >= opts.MinCommunitySize {
			groups = append(groups, score.Group{Members: members})
		}
	}
	sort.Slice(groups, func(i, j int) bool {
		if len(groups[i].Members) != len(groups[j].Members) {
			return len(groups[i].Members) > len(groups[j].Members)
		}
		return groups[i].Members[0] < groups[j].Members[0]
	})
	for i := range groups {
		groups[i].Name = fmt.Sprintf("detected%04d", i)
	}
	return groups, nil
}

// DetectEgoCircles discovers circles inside one ego network: the ego
// subgraph (alters only, the owner excluded — the owner connects to
// everyone and carries no signal) is extracted and label propagation is
// run on it, returning circles as vertex sets of the *host* graph.
func DetectEgoCircles(g *graph.Graph, egoNet []graph.VID, opts LabelPropagationOptions, rng *rand.Rand) ([]score.Group, error) {
	if rng == nil {
		return nil, ErrNoRNG
	}
	if len(egoNet) < 2 {
		return nil, errors.New("detect: ego network needs an owner and at least one alter")
	}
	alters := egoNet[1:] // convention: owner first
	sub, err := graph.Subgraph(g, alters)
	if err != nil {
		return nil, fmt.Errorf("ego subgraph: %w", err)
	}
	detected, err := LabelPropagation(sub, opts, rng)
	if err != nil {
		return nil, err
	}
	// Translate back to host-graph indices.
	out := make([]score.Group, 0, len(detected))
	for i, grp := range detected {
		members := make([]graph.VID, 0, len(grp.Members))
		for _, v := range grp.Members {
			hv, err := g.MustLookup(sub.ExternalID(v))
			if err != nil {
				return nil, fmt.Errorf("translate member: %w", err)
			}
			members = append(members, hv)
		}
		out = append(out, score.Group{
			Name:    fmt.Sprintf("detected%04d", i),
			Members: members,
		})
	}
	return out, nil
}

// MatchResult evaluates detected groups against ground truth.
type MatchResult struct {
	// F1 is the balanced-F1 score of McAuley & Leskovec: the average of
	// (a) each truth group's best F1 over detections and (b) each
	// detection's best F1 over truth groups.
	F1 float64
	// TruthSideF1 and DetectedSideF1 are the two halves of the balance.
	TruthSideF1    float64
	DetectedSideF1 float64
}

// MatchGroups computes the balanced F1 between detected and ground-truth
// group collections.
func MatchGroups(truth, detected []score.Group) MatchResult {
	if len(truth) == 0 || len(detected) == 0 {
		return MatchResult{}
	}
	truthSets := toSets(truth)
	detSets := toSets(detected)

	var truthSide float64
	for _, ts := range truthSets {
		best := 0.0
		for _, ds := range detSets {
			if f := f1(ts, ds); f > best {
				best = f
			}
		}
		truthSide += best
	}
	truthSide /= float64(len(truthSets))

	var detSide float64
	for _, ds := range detSets {
		best := 0.0
		for _, ts := range truthSets {
			if f := f1(ts, ds); f > best {
				best = f
			}
		}
		detSide += best
	}
	detSide /= float64(len(detSets))

	return MatchResult{
		F1:             (truthSide + detSide) / 2,
		TruthSideF1:    truthSide,
		DetectedSideF1: detSide,
	}
}

func toSets(groups []score.Group) []map[graph.VID]struct{} {
	out := make([]map[graph.VID]struct{}, len(groups))
	for i, g := range groups {
		s := make(map[graph.VID]struct{}, len(g.Members))
		for _, v := range g.Members {
			s[v] = struct{}{}
		}
		out[i] = s
	}
	return out
}

// f1 is the F1 of predicting set b for truth set a.
func f1(a, b map[graph.VID]struct{}) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	inter := 0
	for v := range a {
		if _, ok := b[v]; ok {
			inter++
		}
	}
	if inter == 0 {
		return 0
	}
	precision := float64(inter) / float64(len(b))
	recall := float64(inter) / float64(len(a))
	return 2 * precision * recall / (precision + recall)
}
