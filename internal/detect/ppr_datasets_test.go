package detect_test

import (
	"math"
	"testing"

	"gpluscircles/internal/core"
	"gpluscircles/internal/detect"
	"gpluscircles/internal/graph"
)

// TestPPRPropertiesOnSeedDatasets drives the push invariants over all
// five seed data sets (the paper's four networks plus the crawl): mass
// conservation within 1e-12, the eps·deg residual bound at termination,
// and a sweep ordering that is a permutation of the support. An external
// test package so the kernel package itself stays below core in the
// layer map.
func TestPPRPropertiesOnSeedDatasets(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset generation in -short mode")
	}
	suite := core.NewSuite(core.SuiteOptions{Scale: 0.1, Seed: 3})
	const eps = 1e-4
	for _, name := range core.DatasetNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			ds, err := suite.DatasetByName(name)
			if err != nil {
				t.Fatalf("dataset %s: %v", name, err)
			}
			g := ds.Graph
			n := g.NumVertices()
			if n == 0 {
				t.Fatalf("dataset %s is empty", name)
			}
			w := detect.NewPPR(n)
			// A spread of structurally different seeds: first, middle,
			// last, and the maximum-degree vertex.
			seeds := []graph.VID{0, graph.VID(n / 2), graph.VID(n - 1), maxDegreeVertex(g)}
			for _, seed := range seeds {
				vec, err := w.Push(g, seed, detect.PPROptions{Eps: eps})
				if err != nil {
					t.Fatalf("push seed %d: %v", seed, err)
				}
				var mass float64
				for _, v := range vec.Touched {
					mass += vec.Score(v) + vec.Residual(v)
				}
				if math.Abs(mass-1) > 1e-12 {
					t.Errorf("seed %d: mass p+r = %.17g, want 1 within 1e-12", seed, mass)
				}
				for _, v := range vec.Touched {
					deg := float64(g.Degree(v))
					if deg > 0 && vec.Residual(v) >= eps*deg {
						t.Errorf("seed %d: residual bound violated at %d: r=%v >= %v",
							seed, v, vec.Residual(v), eps*deg)
					}
					if vec.Score(v) < 0 || vec.Residual(v) < 0 {
						t.Errorf("seed %d: negative mass at %d: p=%v r=%v",
							seed, v, vec.Score(v), vec.Residual(v))
					}
				}
				order := vec.DegreeNormalizedOrder(g)
				if len(order) != len(vec.Support) {
					t.Fatalf("seed %d: order %d vertices, support %d", seed, len(order), len(vec.Support))
				}
				inSupport := make(map[graph.VID]bool, len(vec.Support))
				for _, v := range vec.Support {
					inSupport[v] = true
				}
				for _, v := range order {
					if !inSupport[v] {
						t.Fatalf("seed %d: order vertex %d not in support", seed, v)
					}
					delete(inSupport, v)
				}
			}
		})
	}
}

func maxDegreeVertex(g *graph.Graph) graph.VID {
	best := graph.VID(0)
	for v := graph.VID(1); int(v) < g.NumVertices(); v++ {
		if g.Degree(v) > g.Degree(best) {
			best = v
		}
	}
	return best
}
