package detect

import (
	"container/heap"
	"fmt"
	"sort"

	"gpluscircles/internal/graph"
	"gpluscircles/internal/score"
)

// GreedyModularityOptions tunes the agglomerative detector.
type GreedyModularityOptions struct {
	// MinCommunitySize drops trivial communities from the result
	// (default 3).
	MinCommunitySize int
}

// GreedyModularity detects a partition by Clauset–Newman–Moore-style
// agglomeration: every vertex starts in its own community, and the merge
// with the largest modularity gain is applied until no merge improves Q.
// Directed arcs are treated as undirected links (the convention of the
// paper's community analysis). Complements LabelPropagation: CNM
// optimizes the paper's Modularity function (Eq. 4) directly, so the
// result is the modularity-maximal coarse structure.
func GreedyModularity(g *graph.Graph, opts GreedyModularityOptions) ([]score.Group, error) {
	if opts.MinCommunitySize <= 0 {
		opts.MinCommunitySize = 3
	}
	n := g.NumVertices()
	if n == 0 {
		return nil, fmt.Errorf("detect: empty graph")
	}

	// Undirected weighted view: e[i][j] = fraction of edge endpoints
	// between communities i and j; a[i] = total endpoint fraction of i.
	type edgeKey struct{ a, b int32 }
	norm := func(i, j int32) edgeKey {
		if i > j {
			i, j = j, i
		}
		return edgeKey{a: i, b: j}
	}
	weights := map[edgeKey]float64{}
	a := make([]float64, n)
	// Count edge ends in the integer domain so the emptiness test stays
	// exact (floateq).
	var edgeEnds int64
	g.Edges(func(e graph.Edge) bool {
		if e.From == e.To {
			return true
		}
		weights[norm(e.From, e.To)]++
		a[e.From]++
		a[e.To]++
		edgeEnds += 2
		return true
	})
	if edgeEnds == 0 {
		return nil, fmt.Errorf("detect: graph has no edges")
	}
	twoM := float64(edgeEnds)
	for k := range weights {
		weights[k] /= twoM
	}
	for i := range a {
		a[i] /= twoM
	}

	// Union-find over communities.
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}

	// Candidate merge heap ordered by modularity gain
	// dQ = 2(e_ij − a_i a_j). Entries go stale after merges and are
	// validated on pop (lazy deletion).
	h := &candHeap{}
	push := func(i, j int32) {
		k := norm(i, j)
		eij := weights[k]
		dq := 2 * (eij - a[i]*a[j])
		heap.Push(h, mergeCand{i: i, j: j, dq: dq, eij: eij})
	}
	for k := range weights {
		push(k.a, k.b)
	}

	for h.Len() > 0 {
		top := heap.Pop(h).(mergeCand)
		if top.dq <= 0 {
			break
		}
		ri, rj := find(top.i), find(top.j)
		if ri == rj {
			continue // already merged
		}
		// Validate against current weights; stale entries get re-pushed
		// with their fresh gain.
		k := norm(ri, rj)
		eij := weights[k]
		dq := 2 * (eij - a[ri]*a[rj])
		//lint:ignore floateq staleness check compares a gain recomputed by the identical expression; exact match intended
		if dq != top.dq || top.i != ri || top.j != rj {
			if dq > 0 {
				heap.Push(h, mergeCand{i: ri, j: rj, dq: dq, eij: eij})
			}
			continue
		}
		// Merge rj into ri.
		parent[rj] = ri
		a[ri] += a[rj]
		// Re-route rj's edges onto ri.
		for key, w := range weights {
			var other int32 = -1
			switch {
			case key.a == rj && key.b != ri:
				other = key.b
			case key.b == rj && key.a != ri:
				other = key.a
			case key.a == rj || key.b == rj:
				other = -2 // the (ri, rj) edge itself
			}
			if other == -1 {
				continue
			}
			delete(weights, key)
			if other == -2 {
				continue
			}
			ro := find(other)
			if ro == ri {
				continue
			}
			weights[norm(ri, ro)] += w
		}
		// Refresh candidate gains for ri's neighbourhood.
		for key := range weights {
			if key.a == ri || key.b == ri {
				push(key.a, key.b)
			}
		}
	}

	byRoot := map[int32][]graph.VID{}
	for v := 0; v < n; v++ {
		r := find(int32(v))
		byRoot[r] = append(byRoot[r], graph.VID(v))
	}
	groups := make([]score.Group, 0, len(byRoot))
	for _, members := range byRoot {
		if len(members) >= opts.MinCommunitySize {
			groups = append(groups, score.Group{Members: members})
		}
	}
	sort.Slice(groups, func(i, j int) bool {
		if len(groups[i].Members) != len(groups[j].Members) {
			return len(groups[i].Members) > len(groups[j].Members)
		}
		return groups[i].Members[0] < groups[j].Members[0]
	})
	for i := range groups {
		groups[i].Name = fmt.Sprintf("cnm%04d", i)
	}
	return groups, nil
}

// mergeCand is one candidate merge with its cached modularity gain.
type mergeCand struct {
	i, j int32
	dq   float64
	eij  float64
}

// candHeap is a max-heap of merge candidates by gain.
type candHeap []mergeCand

func (h candHeap) Len() int            { return len(h) }
func (h candHeap) Less(i, j int) bool  { return h[i].dq > h[j].dq }
func (h candHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *candHeap) Push(x interface{}) { *h = append(*h, x.(mergeCand)) }
func (h *candHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
