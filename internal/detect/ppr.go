package detect

import (
	"fmt"
	"sort"

	"gpluscircles/internal/graph"
)

// PPROptions tunes the approximate personalized-PageRank push.
type PPROptions struct {
	// Alpha is the teleport probability (default 0.15): the chance the
	// walk restarts at the seed instead of following an edge.
	Alpha float64
	// Eps is the residual tolerance (default 1e-4): the push terminates
	// when every vertex v holds residual r(v) < Eps·deg(v), which bounds
	// the approximation error of p(v)/deg(v) by Eps (Andersen–Chung–Lang,
	// Theorem 1).
	Eps float64
	// MaxPush caps the number of push operations as a safety valve
	// against pathological parameters (default 0: no cap; the eps bound
	// alone guarantees termination in at most 1/(eps·alpha) pushes of
	// residual mass).
	MaxPush int
}

func (o PPROptions) withDefaults() PPROptions {
	if o.Alpha <= 0 || o.Alpha >= 1 {
		o.Alpha = 0.15
	}
	if o.Eps <= 0 {
		o.Eps = 1e-4
	}
	return o
}

// PPRVector is the result of one push: a sparse approximate PPR vector.
// It aliases the workspace that produced it and is valid only until that
// workspace's next Push.
type PPRVector struct {
	// Support lists the vertices with positive approximate score p(v),
	// ascending by vertex id.
	Support []graph.VID
	// Touched lists every vertex with nonzero p or residual r, ascending;
	// a superset of Support. Mass conservation holds over Touched.
	Touched []graph.VID
	// Pushes counts the push operations performed.
	Pushes int

	p, r []float64
}

// Score returns the approximate PPR mass p(u).
func (v *PPRVector) Score(u graph.VID) float64 { return v.p[u] }

// Residual returns the unpushed residual mass r(u).
func (v *PPRVector) Residual(u graph.VID) float64 { return v.r[u] }

// DegreeNormalizedOrder returns the support sorted by p(v)/deg(v)
// descending — the sweep ordering of local spectral clustering. Ties
// break ascending by vertex id so the ordering (and everything computed
// from it) is deterministic. Degree-0 vertices order first: their mass
// can never leave, so p(v)/deg(v) is effectively infinite.
func (v *PPRVector) DegreeNormalizedOrder(g graph.View) []graph.VID {
	order := make([]graph.VID, len(v.Support))
	copy(order, v.Support)
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		da, db := g.Degree(a), g.Degree(b)
		// Compare p(a)/da vs p(b)/db by cross-multiplication: exact in
		// the common degree range and free of 0/0 special cases beyond
		// the explicit zero-degree branches.
		if da == 0 {
			if db == 0 {
				return a < b
			}
			return true
		}
		if db == 0 {
			return false
		}
		ra := v.p[a] * float64(db)
		rb := v.p[b] * float64(da)
		if ra > rb {
			return true
		}
		if ra < rb {
			return false
		}
		return a < b
	})
	return order
}

// PPR is a reusable workspace for approximate personalized-PageRank
// pushes over views with a common vertex range. Reuse keeps a sweep over
// many seeds allocation-free in the steady state: only the vertices
// touched by the previous push are cleared, not the whole arrays. Not
// safe for concurrent use; parallel sweeps hold one PPR per worker.
type PPR struct {
	p, r    []float64
	queued  []bool
	queue   []graph.VID
	touched []graph.VID
	vec     PPRVector
}

// NewPPR returns a workspace for views with up to n vertices.
func NewPPR(n int) *PPR {
	return &PPR{
		p:      make([]float64, n),
		r:      make([]float64, n),
		queued: make([]bool, n),
	}
}

func (w *PPR) grow(n int) {
	if len(w.p) < n {
		w.p = make([]float64, n)
		w.r = make([]float64, n)
		w.queued = make([]bool, n)
		w.touched = w.touched[:0]
	}
}

// Push computes an approximate PPR vector personalized on seed with the
// Andersen–Chung–Lang push procedure: repeatedly pick a vertex u with
// r(u) ≥ eps·deg(u), move alpha·r(u) into p(u), spread (1−alpha)·r(u)
// evenly over u's neighbors' residuals, and zero r(u). At termination
// every residual satisfies r(v) < eps·deg(v) and the total mass p + r
// still sums to 1 (floating-point roundoff aside) — both properties are
// asserted by the detect property tests over the seed datasets.
//
// Directed views diffuse over the union adjacency (out- and in-
// neighbors), matching graph.Degree and the undirected reading the
// paper's conductance metric takes of the social graph.
//
// The returned vector aliases the workspace and is valid until the next
// Push. An out-of-range seed returns ErrBadSeed.
func (w *PPR) Push(g graph.View, seed graph.VID, opts PPROptions) (*PPRVector, error) {
	n := g.NumVertices()
	if seed < 0 || int(seed) >= n {
		return nil, fmt.Errorf("%w: %d", ErrBadSeed, seed)
	}
	opts = opts.withDefaults()
	w.grow(n)
	// Lazy clear: only what the previous push dirtied.
	for _, v := range w.touched {
		w.p[v] = 0
		w.r[v] = 0
		w.queued[v] = false
	}
	w.touched = w.touched[:0]
	w.queue = w.queue[:0]

	touch := func(v graph.VID) {
		// touched is append-only and deduplicated via the p/r zero state:
		// a vertex is recorded the first time mass reaches it.
		w.touched = append(w.touched, v)
	}

	w.r[seed] = 1
	touch(seed)
	if g.Degree(seed) == 0 {
		// An isolated seed holds all mass forever: the walk can never
		// leave, so the exact PPR vector is the indicator of the seed.
		w.p[seed] = 1
		w.r[seed] = 0
		return w.finish(g, 0), nil
	}
	w.queue = append(w.queue, seed)
	w.queued[seed] = true

	directed := g.Directed()
	pushes := 0
	for len(w.queue) > 0 {
		if opts.MaxPush > 0 && pushes >= opts.MaxPush {
			break
		}
		u := w.queue[0]
		w.queue = w.queue[1:]
		w.queued[u] = false
		deg := float64(g.Degree(u))
		ru := w.r[u]
		if ru < opts.Eps*deg {
			// Stale queue entry: the residual was pushed below threshold
			// by an earlier pop before this one drained.
			continue
		}
		pushes++
		w.p[u] += opts.Alpha * ru
		w.r[u] = 0
		share := (1 - opts.Alpha) * ru / deg
		spread := func(v graph.VID) {
			if w.p[v] == 0 && w.r[v] == 0 { //lint:ignore floateq zero is the exact untouched state
				touch(v)
			}
			w.r[v] += share
			if !w.queued[v] && w.r[v] >= opts.Eps*float64(g.Degree(v)) {
				w.queue = append(w.queue, v)
				w.queued[v] = true
			}
		}
		for _, v := range g.OutNeighbors(u) {
			spread(v)
		}
		if directed {
			for _, v := range g.InNeighbors(u) {
				spread(v)
			}
		}
	}
	return w.finish(g, pushes), nil
}

// finish sorts the touched set and materializes the result vector.
func (w *PPR) finish(g graph.View, pushes int) *PPRVector {
	sort.Slice(w.touched, func(i, j int) bool { return w.touched[i] < w.touched[j] })
	support := make([]graph.VID, 0, len(w.touched))
	for _, v := range w.touched {
		if w.p[v] > 0 {
			support = append(support, v)
		}
	}
	w.vec = PPRVector{
		Support: support,
		Touched: w.touched,
		Pushes:  pushes,
		p:       w.p,
		r:       w.r,
	}
	return &w.vec
}

// ApproxPPR is the convenience form of PPR.Push for one-off calls.
func ApproxPPR(g graph.View, seed graph.VID, opts PPROptions) (*PPRVector, error) {
	return NewPPR(g.NumVertices()).Push(g, seed, opts)
}
