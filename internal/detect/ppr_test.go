package detect

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"gpluscircles/internal/graph"
)

func pprGraph(t *testing.T, directed bool, edges [][2]int64) *graph.Graph {
	t.Helper()
	g, err := graph.FromEdges(directed, edges)
	if err != nil {
		t.Fatalf("build graph: %v", err)
	}
	return g
}

func clique(t *testing.T, n int) *graph.Graph {
	t.Helper()
	var edges [][2]int64
	for u := int64(0); u < int64(n); u++ {
		for v := u + 1; v < int64(n); v++ {
			edges = append(edges, [2]int64{u, v})
		}
	}
	return pprGraph(t, false, edges)
}

// checkMassAndResidual asserts the two push invariants: total mass p + r
// over the touched set conserved within 1e-12, and every residual below
// the eps·deg termination threshold.
func checkMassAndResidual(t *testing.T, g graph.View, vec *PPRVector, eps float64) {
	t.Helper()
	var mass float64
	for _, v := range vec.Touched {
		mass += vec.Score(v) + vec.Residual(v)
	}
	if math.Abs(mass-1) > 1e-12 {
		t.Errorf("mass p+r = %.17g, want 1 within 1e-12", mass)
	}
	for _, v := range vec.Touched {
		deg := float64(g.Degree(v))
		if deg > 0 && vec.Residual(v) >= eps*deg {
			t.Errorf("residual bound violated at %d: r=%v >= eps*deg=%v", v, vec.Residual(v), eps*deg)
		}
	}
}

func TestPPRCliqueNearUniform(t *testing.T) {
	const n = 30
	const eps = 1e-7
	g := clique(t, n)
	vec, err := ApproxPPR(g, 0, PPROptions{Eps: eps})
	if err != nil {
		t.Fatalf("push: %v", err)
	}
	checkMassAndResidual(t, g, vec, eps)
	if len(vec.Support) != n {
		t.Fatalf("clique support = %d vertices, want %d", len(vec.Support), n)
	}
	// The seed keeps its teleport bonus; all other vertices are
	// exchangeable and must score near-uniformly.
	lo, hi := math.Inf(1), math.Inf(-1)
	for v := graph.VID(1); v < n; v++ {
		s := vec.Score(v)
		lo = math.Min(lo, s)
		hi = math.Max(hi, s)
	}
	if vec.Score(0) <= hi {
		t.Errorf("seed score %v not above peer max %v", vec.Score(0), hi)
	}
	if (hi-lo)/hi > 1e-2 {
		t.Errorf("peer scores not near-uniform: [%v, %v]", lo, hi)
	}
}

func TestPPRIsolatedSeed(t *testing.T) {
	// Vertex 3 exists but has no edges.
	b := graph.NewBuilder(false)
	b.AddEdge(0, 1)
	b.AddVertex(3)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	seed, ok := g.Lookup(3)
	if !ok {
		t.Fatal("vertex 3 missing")
	}
	vec, err := ApproxPPR(g, seed, PPROptions{})
	if err != nil {
		t.Fatalf("push: %v", err)
	}
	if vec.Score(seed) != 1 { //lint:ignore floateq isolated seed is exact
		t.Errorf("isolated seed score = %v, want exactly 1", vec.Score(seed))
	}
	if len(vec.Support) != 1 || vec.Support[0] != seed {
		t.Errorf("isolated seed support = %v, want [%d]", vec.Support, seed)
	}
	if vec.Pushes != 0 {
		t.Errorf("isolated seed pushes = %d, want 0", vec.Pushes)
	}
}

func TestPPRBadSeed(t *testing.T) {
	g := pprGraph(t, false, [][2]int64{{0, 1}})
	if _, err := ApproxPPR(g, -1, PPROptions{}); !errors.Is(err, ErrBadSeed) {
		t.Errorf("seed -1: got %v, want ErrBadSeed", err)
	}
	if _, err := ApproxPPR(g, 99, PPROptions{}); !errors.Is(err, ErrBadSeed) {
		t.Errorf("seed 99: got %v, want ErrBadSeed", err)
	}
}

// Workspace reuse must be invisible: pushing seed A then seed B yields
// bit-identical scores to a fresh workspace pushing B.
func TestPPRWorkspaceReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := pprGraph(t, false, randomPPREdges(rng, 60, 200))
	w := NewPPR(g.NumVertices())
	if _, err := w.Push(g, 0, PPROptions{}); err != nil {
		t.Fatalf("first push: %v", err)
	}
	reused, err := w.Push(g, 7, PPROptions{})
	if err != nil {
		t.Fatalf("reused push: %v", err)
	}
	fresh, err := ApproxPPR(g, 7, PPROptions{})
	if err != nil {
		t.Fatalf("fresh push: %v", err)
	}
	if len(reused.Support) != len(fresh.Support) {
		t.Fatalf("support sizes differ: %d vs %d", len(reused.Support), len(fresh.Support))
	}
	for i, v := range fresh.Support {
		if reused.Support[i] != v {
			t.Fatalf("support[%d] = %d vs %d", i, reused.Support[i], v)
		}
		if reused.Score(v) != fresh.Score(v) { //lint:ignore floateq reuse must be bit-identical
			t.Fatalf("score(%d) = %v vs %v", v, reused.Score(v), fresh.Score(v))
		}
		if reused.Residual(v) != fresh.Residual(v) { //lint:ignore floateq reuse must be bit-identical
			t.Fatalf("residual(%d) = %v vs %v", v, reused.Residual(v), fresh.Residual(v))
		}
	}
}

func TestPPRDegreeNormalizedOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := pprGraph(t, true, randomPPREdges(rng, 50, 220))
	vec, err := ApproxPPR(g, 1, PPROptions{Eps: 1e-5})
	if err != nil {
		t.Fatalf("push: %v", err)
	}
	checkMassAndResidual(t, g, vec, 1e-5)
	order := vec.DegreeNormalizedOrder(g)
	if len(order) != len(vec.Support) {
		t.Fatalf("order has %d vertices, support %d", len(order), len(vec.Support))
	}
	seen := make(map[graph.VID]bool, len(order))
	for i, v := range order {
		if seen[v] {
			t.Fatalf("order repeats vertex %d", v)
		}
		seen[v] = true
		if i == 0 {
			continue
		}
		u := order[i-1]
		// p(u)/deg(u) >= p(v)/deg(v) via cross-multiplication, ties by id.
		du, dv := float64(g.Degree(u)), float64(g.Degree(v))
		ru, rv := vec.Score(u)*dv, vec.Score(v)*du
		if ru < rv {
			t.Fatalf("order[%d..%d] not descending: %v < %v", i-1, i, ru, rv)
		}
		if ru == rv && u > v { //lint:ignore floateq tie detection mirrors the comparator
			t.Fatalf("tie at order[%d..%d] not broken by id: %d before %d", i-1, i, u, v)
		}
	}
}

func randomPPREdges(rng *rand.Rand, n, m int) [][2]int64 {
	edges := make([][2]int64, 0, m+n)
	for i := 0; i < m; i++ {
		edges = append(edges, [2]int64{rng.Int63n(int64(n)), rng.Int63n(int64(n))})
	}
	// Cycle so every vertex exists and has degree > 0.
	for v := int64(0); v < int64(n); v++ {
		edges = append(edges, [2]int64{v, (v + 1) % int64(n)})
	}
	return edges
}
