package detect

import (
	"errors"
	"fmt"

	"gpluscircles/internal/graph"
	"gpluscircles/internal/score"
)

// ErrBadSeed is returned when a sweep seed vertex is invalid.
var ErrBadSeed = errors.New("detect: invalid seed vertex")

// SweepOptions tunes the greedy conductance sweep.
type SweepOptions struct {
	// MaxSize bounds the community size explored (default 200).
	MaxSize int
	// MinSize is the smallest community the sweep may return (default 3).
	MinSize int
}

func (o SweepOptions) withDefaults() SweepOptions {
	if o.MaxSize <= 0 {
		o.MaxSize = 200
	}
	if o.MinSize <= 0 {
		o.MinSize = 3
	}
	return o
}

// ConductanceSweep grows a community around the seed vertex greedily:
// at each step the frontier vertex whose inclusion minimizes conductance
// joins the set, and the prefix with the lowest conductance overall is
// returned. This is the classical local-community baseline built on the
// paper's central metric (Eq. 3) — the "best possible community" around
// a user, against which curated circles can be contrasted.
func ConductanceSweep(g *graph.Graph, seed graph.VID, opts SweepOptions) (score.Group, float64, error) {
	if seed < 0 || int(seed) >= g.NumVertices() {
		return score.Group{}, 0, fmt.Errorf("%w: %d", ErrBadSeed, seed)
	}
	opts = opts.withDefaults()

	set := graph.NewSet(g.NumVertices())
	set.Add(seed)

	// Track internal/boundary arc counts incrementally.
	cut := graph.Cut(g, set)
	internal := cut.Internal
	boundary := cut.Boundary

	conductanceOf := func(internal, boundary int64) float64 {
		// Emptiness test in the integer domain (floateq): the
		// denominator is zero exactly when both counts are.
		if internal == 0 && boundary == 0 {
			return 1
		}
		return float64(boundary) / (2*float64(internal) + float64(boundary))
	}

	order := []graph.VID{seed}
	bestPrefix := 1
	bestCond := conductanceOf(internal, boundary)

	// frontier holds candidate vertices adjacent to the set.
	inFrontier := graph.NewSet(g.NumVertices())
	addFrontier := func(u graph.VID) {
		push := func(w graph.VID) {
			if !set.Contains(w) && !inFrontier.Contains(w) {
				inFrontier.Add(w)
			}
		}
		for _, w := range g.OutNeighbors(u) {
			push(w)
		}
		if g.Directed() {
			for _, w := range g.InNeighbors(u) {
				push(w)
			}
		}
	}
	addFrontier(seed)

	// delta computes the internal/boundary changes of adding w.
	delta := func(w graph.VID) (dInternal, dBoundary int64) {
		var toSet, fromSet int64
		for _, x := range g.OutNeighbors(w) {
			if set.Contains(x) {
				toSet++
			}
		}
		if g.Directed() {
			for _, x := range g.InNeighbors(w) {
				if set.Contains(x) {
					fromSet++
				}
			}
		} else {
			fromSet = 0 // undirected adjacency already counted in toSet
		}
		linksIn := toSet + fromSet
		dInternal = linksIn
		// w's edges to the set stop being boundary; its remaining edges
		// become boundary.
		dBoundary = int64(g.Degree(w)) - 2*linksIn
		return dInternal, dBoundary
	}

	for set.Len() < opts.MaxSize {
		var best graph.VID = -1
		bestNewCond := 2.0
		var bestDI, bestDB int64
		for _, w := range inFrontier.Members() {
			if set.Contains(w) {
				continue
			}
			di, db := delta(w)
			if di == 0 {
				continue // only attached vertices qualify
			}
			c := conductanceOf(internal+di, boundary+db)
			//lint:ignore floateq deterministic tie-break: equal conductance falls through to the smaller vertex id
			if c < bestNewCond || (c == bestNewCond && (best == -1 || w < best)) {
				best, bestNewCond = w, c
				bestDI, bestDB = di, db
			}
		}
		if best < 0 {
			break
		}
		set.Add(best)
		order = append(order, best)
		internal += bestDI
		boundary += bestDB
		addFrontier(best)
		if c := conductanceOf(internal, boundary); c < bestCond && set.Len() >= opts.MinSize {
			bestCond = c
			bestPrefix = set.Len()
		}
	}

	members := make([]graph.VID, bestPrefix)
	copy(members, order[:bestPrefix])
	return score.Group{
		Name:    fmt.Sprintf("sweep-seed%d", g.ExternalID(seed)),
		Members: members,
	}, bestCond, nil
}

// PartitionModularity computes Newman's global modularity Q of a
// partition (a set of disjoint groups): the sum of per-group
// (m_C − E(m_C))/m terms under the configuration-model expectation —
// the standard quality measure for detected partitions.
func PartitionModularity(ctx *score.Context, groups []score.Group) float64 {
	if ctx.G.NumEdges() == 0 {
		return 0
	}
	m := float64(ctx.G.NumEdges())
	var q float64
	for _, grp := range groups {
		set := graph.SetOf(ctx.G, grp.Members)
		cut := graph.Cut(ctx.G, set)
		q += (float64(cut.Internal) - ctx.ChungLuExpectation(set)) / m
	}
	return q
}
