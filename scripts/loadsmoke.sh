#!/usr/bin/env bash
# Load-test smoke for the serving layer: boot circled on an ephemeral
# port, replay 100 concurrent clients with circleload, then SIGTERM the
# service and verify the graceful drain.
#
# The smoke asserts the serving SLO end to end:
#   - circleload exits non-zero on any 5xx or transport error, so a
#     passing run means the service shed overload with 429s only;
#   - circled must exit 0 on SIGTERM (clean drain, in-flight work done);
#   - the final run manifest must parse back via `circlebench compare`.
set -euo pipefail
cd "$(dirname "$0")/.."

dir="${LOADSMOKE_DIR:-$(mktemp -d)}"
mkdir -p "$dir"
go build -o "$dir/circled" ./cmd/circled
go build -o "$dir/circleload" ./cmd/circleload

"$dir/circled" -addr 127.0.0.1:0 -scale 0.15 -queue 32 \
  -manifest "$dir/circled.manifest.jsonl" >"$dir/circled.log" 2>&1 &
pid=$!
trap 'kill "$pid" 2>/dev/null || true' EXIT

# The service prints its resolved ephemeral address once warmed.
addr=""
for _ in $(seq 1 120); do
  addr=$(sed -n 's/^circled: listening on \([^ ]*\).*/\1/p' "$dir/circled.log")
  if [ -n "$addr" ] && curl -sf "http://$addr/healthz" >/dev/null 2>&1; then
    break
  fi
  addr=""
  sleep 0.5
done
if [ -z "$addr" ]; then
  echo "loadsmoke: circled did not come up" >&2
  cat "$dir/circled.log" >&2
  exit 1
fi

"$dir/circleload" -addr "http://$addr" -n 100 -c 100 -dup 0.3

kill -TERM "$pid"
if ! wait "$pid"; then
  echo "loadsmoke: circled did not drain cleanly on SIGTERM" >&2
  cat "$dir/circled.log" >&2
  exit 1
fi
trap - EXIT

go run ./cmd/circlebench compare "$dir/circled.manifest.jsonl" >/dev/null
echo "loadsmoke: ok (artifacts in $dir)"
