#!/usr/bin/env bash
# Load-test smoke for the serving tier: boot circled on an ephemeral
# port, replay 100 concurrent clients with circleload, then do the same
# through a 2-backend circlerouter — batch mode, with one backend killed
# mid-run — and finally SIGTERM everything and verify graceful drains.
#
# The smoke asserts the serving SLO end to end:
#   - circleload exits non-zero on any 5xx or transport error, so a
#     passing run means the service shed overload with 429s only and the
#     router's failover never leaked a backend death to a client;
#   - the -dup mix must produce result-cache hits (hit rate > 0);
#   - circled must exit 0 on SIGTERM (clean drain, in-flight work done);
#   - the final run manifest must parse back via `circlebench compare`.
set -euo pipefail
cd "$(dirname "$0")/.."

dir="${LOADSMOKE_DIR:-$(mktemp -d)}"
mkdir -p "$dir"
go build -o "$dir/circled" ./cmd/circled
go build -o "$dir/circleload" ./cmd/circleload
go build -o "$dir/circlerouter" ./cmd/circlerouter

# boot_circled NAME EXTRA_ARGS... starts one backend in this shell (so
# `wait` can observe its exit status) and leaves its resolved host:port
# in $dir/NAME.addr (the service prints it once warmed).
boot_circled() {
  local name=$1; shift
  "$dir/circled" -addr 127.0.0.1:0 -scale 0.15 -queue 32 "$@" \
    >"$dir/$name.log" 2>&1 &
  echo $! >"$dir/$name.pid"
  local addr=""
  for _ in $(seq 1 120); do
    addr=$(sed -n 's/^circled: listening on \([^ ]*\).*/\1/p' "$dir/$name.log")
    if [ -n "$addr" ] && curl -sf "http://$addr/healthz" >/dev/null 2>&1; then
      echo "$addr" >"$dir/$name.addr"
      return 0
    fi
    addr=""
    sleep 0.5
  done
  echo "loadsmoke: $name did not come up" >&2
  cat "$dir/$name.log" >&2
  return 1
}

cleanup() {
  for f in "$dir"/*.pid; do
    [ -f "$f" ] && kill "$(cat "$f")" 2>/dev/null || true
  done
}
trap cleanup EXIT

# ---- Leg 1: single backend, unary replay, drain check ----------------
boot_circled circled -manifest "$dir/circled.manifest.jsonl"
addr=$(cat "$dir/circled.addr")

"$dir/circleload" -addr "http://$addr" -n 100 -c 100 -dup 0.3 -json \
  | tee "$dir/unary.report.json"

# The 0.3 duplicate mix must produce result-cache hits.
hits=$(sed -n 's/.*"server_cache_hits": \([0-9]*\).*/\1/p' "$dir/unary.report.json")
if [ -z "$hits" ] || [ "$hits" -eq 0 ]; then
  echo "loadsmoke: no cache hits under a -dup mix (server_cache_hits=$hits)" >&2
  exit 1
fi

kill -TERM "$(cat "$dir/circled.pid")"
if ! wait "$(cat "$dir/circled.pid")"; then
  echo "loadsmoke: circled did not drain cleanly on SIGTERM" >&2
  cat "$dir/circled.log" >&2
  exit 1
fi
rm "$dir/circled.pid"

go run ./cmd/circlebench compare "$dir/circled.manifest.jsonl" >/dev/null

# ---- Leg 2: 2-backend router, batch replay, induced backend kill -----
boot_circled backend1 -manifest "" -experiments batch-scoring
boot_circled backend2 -manifest "" -experiments batch-scoring
b1=$(cat "$dir/backend1.addr")
b2=$(cat "$dir/backend2.addr")

"$dir/circlerouter" -addr 127.0.0.1:0 -backends "http://$b1,http://$b2" \
  -probe-interval 500ms >"$dir/router.log" 2>&1 &
echo $! >"$dir/router.pid"
raddr=""
for _ in $(seq 1 60); do
  raddr=$(sed -n 's/^circlerouter: listening on \([^ ]*\).*/\1/p' "$dir/router.log")
  if [ -n "$raddr" ] && curl -sf "http://$raddr/healthz" >/dev/null 2>&1; then
    break
  fi
  raddr=""
  sleep 0.5
done
if [ -z "$raddr" ]; then
  echo "loadsmoke: circlerouter did not come up" >&2
  cat "$dir/router.log" >&2
  exit 1
fi

# Kill backend2 mid-replay: the router must fail over with zero 5xx,
# which circleload's exit code asserts.
( sleep 2; kill -TERM "$(cat "$dir/backend2.pid")" ) &
killer=$!
"$dir/circleload" -addr "http://$raddr" -n 400 -c 8 -dup 0.3 \
  -batch -batch-size 32 -json | tee "$dir/batch.report.json"
wait "$killer"
wait "$(cat "$dir/backend2.pid")" || true
rm "$dir/backend2.pid"

# The batch replay must have gone through the gated batch endpoint.
bmode=$(sed -n 's/.*"batch": \(true\|false\).*/\1/p' "$dir/batch.report.json")
if [ "$bmode" != "true" ]; then
  echo "loadsmoke: batch replay did not report batch mode" >&2
  exit 1
fi

kill -TERM "$(cat "$dir/router.pid")"
wait "$(cat "$dir/router.pid")" || true
rm "$dir/router.pid"
kill -TERM "$(cat "$dir/backend1.pid")"
if ! wait "$(cat "$dir/backend1.pid")"; then
  echo "loadsmoke: backend1 did not drain cleanly on SIGTERM" >&2
  cat "$dir/backend1.log" >&2
  exit 1
fi
rm "$dir/backend1.pid"
trap - EXIT

echo "loadsmoke: ok (artifacts in $dir)"
